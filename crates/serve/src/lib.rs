//! `spmv-serve`: a persistent-connection, event-driven TCP inference
//! server for the format advisor.
//!
//! Std-only by design (plus workspace crates): the listener is a plain
//! nonblocking `TcpListener`, HTTP/1.1 is the hand-rolled subset in
//! [`http`], readiness comes from the tiny epoll shim in `epoll` (raw
//! `extern` declarations against the libc std already links — zero new
//! dependencies), and concurrency is N shared-nothing shard threads
//! (`event`), each running its own epoll loop over the connections it
//! accepted. The pieces:
//!
//! - **Keep-alive + pipelining** — a connection carries many requests;
//!   responses advertise `Connection: keep-alive` up to a bounded
//!   per-connection request budget and idle timeout, and the
//!   `Connection: close` one-shot path is preserved unchanged for the
//!   CLI and old clients.
//! - **Admission control** — each shard admits up to `queue_depth + 1`
//!   concurrent connections (the budget the old bounded channel gave a
//!   worker); past that it answers `503` + `Retry-After` immediately,
//!   so overload sheds *new* work while admitted work completes.
//! - **Shared advisor** — one [`spmv_core::OnlineAdvisor`] serves every
//!   shard. Each request takes one generation snapshot (an `Arc` clone)
//!   and uses it for its cache key, model call, and response attribution,
//!   so a concurrent hot-swap can never tear a request across
//!   generations. The wrapped advisors are immutable; only the active
//!   pointer moves.
//! - **Online learning** — `POST /v1/feedback` feeds a seeded reservoir;
//!   a background retrainer builds candidate artifacts deterministically,
//!   shadow-scores them on live traffic, and promotes or rolls back by
//!   atomic generation swap (see `spmv_core::online` and DESIGN.md §4i).
//! - **Single-flight LRU cache** ([`cache`]) — responses are memoized by
//!   request content in key-hash shards (fixed count, deliberately not
//!   tied to the worker shard count); concurrent identical requests
//!   collapse to one model pass.
//! - **Micro-batching** ([`batch`]) — feature-vector requests queue into
//!   a leader–follower batcher that drains them through one batch call.
//! - **Observability** — every stage runs under `spmv-observe` spans and
//!   counters chosen so the manifest's deterministic section is a pure
//!   function of the request mix at any shard count and any keep-alive
//!   vs close client mix (see `tests/determinism.rs`); scheduling facts
//!   (connections accepted/shed/reused per shard) are merged into the
//!   quarantined timing section at shutdown.

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
mod epoll;
mod event;
pub mod http;
pub mod lifecycle;
pub mod loadgen;

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use spmv_core::{
    AdvisorHandle, FeedbackEvent, FeedbackOutcome, Generation, OnlineAdvisor, OnlineConfig,
    RecommendationSource,
};
use spmv_features::{FeatureVector, FEATURE_COUNT};
use spmv_matrix::Format;

use crate::batch::Batcher;
use crate::cache::{Lookup, ResponseCache};
use crate::event::ShardStats;
use crate::http::{error_body, Limits, ProtocolError, Request};

/// Everything tunable about a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`] for the resolved one).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted-but-unhandled connection slots; beyond this the acceptor
    /// sheds load with `503`.
    pub queue_depth: usize,
    /// Completed responses retained by the content cache (0 disables).
    pub cache_capacity: usize,
    /// Hard cap on a request body (bytes), enforced from the declared
    /// `Content-Length` before the body is read.
    pub max_body_bytes: usize,
    /// Hard cap on the request line + headers (bytes).
    pub max_header_bytes: usize,
    /// Socket read/write timeout per connection (ms); a stalled client
    /// gets `408` instead of pinning a worker.
    pub read_timeout_ms: u64,
    /// Most feature-vector jobs drained per model pass.
    pub max_batch: usize,
    /// Artificial per-request handling delay (ms). Zero in production;
    /// tests use it to make queue saturation reproducible.
    pub handler_delay_ms: u64,
    /// Whether `POST /admin/shutdown` is routed (the binary enables it;
    /// embedded tests usually prefer [`ServerHandle::shutdown`]).
    pub enable_admin_shutdown: bool,
    /// Most requests served over one keep-alive connection before the
    /// server closes it (`1` degrades to a pure one-shot server).
    pub keep_alive_max_requests: usize,
    /// How long an idle keep-alive connection (≥1 request served,
    /// nothing buffered) is retained before a silent close (ms).
    pub idle_timeout_ms: u64,
    /// The online-learning loop (feedback → retrain → canary → swap).
    /// Inert by default (`retrain_after == 0` never schedules a retrain).
    pub online: OnlineConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_capacity: 256,
            max_body_bytes: 8 * 1024 * 1024,
            max_header_bytes: 16 * 1024,
            read_timeout_ms: 5_000,
            max_batch: 8,
            handler_delay_ms: 0,
            enable_admin_shutdown: false,
            keep_alive_max_requests: 1024,
            idle_timeout_ms: 5_000,
            online: OnlineConfig::default(),
        }
    }
}

struct Shared {
    online: OnlineAdvisor,
    cache: ResponseCache,
    batcher: Batcher,
    config: ServerConfig,
    limits: Limits,
    /// Set when the server should stop accepting; the acceptor re-checks
    /// it after every `accept` returns.
    stop: AtomicBool,
    /// Set by `POST /admin/shutdown`; the binary polls it.
    shutdown_requested: AtomicBool,
    addr: SocketAddr,
}

/// A running server: resolved address, control surface, join handles.
pub struct Server {
    shared: Arc<Shared>,
    shards: Vec<JoinHandle<()>>,
    stats: Vec<Arc<ShardStats>>,
    /// The background retrainer (only spawned when retraining is enabled).
    retrainer: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the shard event loops, and return immediately.
    pub fn spawn(config: ServerConfig, handle: AdvisorHandle) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let limits = Limits {
            max_header_bytes: config.max_header_bytes,
            max_body_bytes: config.max_body_bytes,
        };
        let shared = Arc::new(Shared {
            cache: ResponseCache::new(config.cache_capacity),
            batcher: Batcher::new(config.max_batch),
            online: OnlineAdvisor::new(handle, config.online.clone()),
            limits,
            stop: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            addr,
            config,
        });

        // The retrainer never runs on a request shard: no request blocks
        // on a retrain. It parks on a condvar until feedback volume
        // schedules a job.
        let retrainer = if shared.config.online.retrain_after > 0 {
            let shared_retrainer = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("serve-retrainer".to_string())
                    .spawn(move || shared_retrainer.online.run_retrainer())?,
            )
        } else {
            None
        };

        // Every shard registers the same listener with EPOLLEXCLUSIVE,
        // so a connect wakes one shard, which then owns the connection.
        let listener = Arc::new(listener);
        let stats: Vec<Arc<ShardStats>> = (0..shared.config.workers.max(1))
            .map(|_| Arc::new(ShardStats::new()))
            .collect();
        let shards = stats
            .iter()
            .enumerate()
            .map(|(i, shard_stats)| {
                let shared = Arc::clone(&shared);
                let listener = Arc::clone(&listener);
                let shard_stats = Arc::clone(shard_stats);
                std::thread::Builder::new()
                    .name(format!("serve-shard-{i}"))
                    .spawn(move || event::shard_loop(shared, listener, shard_stats))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        Ok(Server {
            shared,
            shards,
            stats,
            retrainer,
        })
    }

    /// The resolved bind address (the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether `POST /admin/shutdown` has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Stop accepting, let admitted and in-flight requests finish
    /// (bounded by their deadlines), join every shard, and publish the
    /// scheduling stats into the manifest's timing section. Idempotent
    /// with respect to an admin shutdown already in progress.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Shards notice the flag within one epoll tick; no wake-up poke
        // is needed because waits are bounded.
        for shard in self.shards.drain(..) {
            let _join = shard.join();
        }
        self.shared.online.stop();
        if let Some(retrainer) = self.retrainer.take() {
            let _join = retrainer.join();
        }
        // Connection accounting is scheduling (which shard got which
        // connection, how clients reused keep-alive): it goes to the
        // timing section, never to the deterministic counters.
        let total = |f: fn(&ShardStats) -> u64| -> u64 { self.stats.iter().map(|s| f(s)).sum() };
        spmv_observe::set_timing_info("serve.shards", &self.stats.len().to_string());
        spmv_observe::set_timing_info(
            "serve.conns.accepted",
            &total(|s| s.accepted.load(Ordering::Relaxed)).to_string(),
        );
        spmv_observe::set_timing_info(
            "serve.conns.shed",
            &total(|s| s.shed.load(Ordering::Relaxed)).to_string(),
        );
        spmv_observe::set_timing_info(
            "serve.requests.reused_conn",
            &total(|s| s.reused.load(Ordering::Relaxed)).to_string(),
        );
    }
}

/// Per-status-class counters (`counter` needs `'static` names).
fn count_status(status: u16) {
    let name = match status {
        200..=299 => "serve.responses.2xx",
        400..=499 => "serve.responses.4xx",
        500..=599 => "serve.responses.5xx",
        _ => "serve.responses.other",
    };
    spmv_observe::counter(name, 1);
}

fn count_protocol_error(err: &ProtocolError) {
    let name = match err {
        ProtocolError::Timeout => "serve.protocol.timeout",
        ProtocolError::BadRequestLine(_) => "serve.protocol.bad_request_line",
        ProtocolError::UnsupportedVersion(_) => "serve.protocol.bad_version",
        ProtocolError::HeaderTooLarge { .. } => "serve.protocol.header_too_large",
        ProtocolError::BadHeader(_) => "serve.protocol.bad_header",
        ProtocolError::MissingContentLength => "serve.protocol.missing_content_length",
        ProtocolError::BadContentLength(_) => "serve.protocol.bad_content_length",
        ProtocolError::UnsupportedTransferEncoding => "serve.protocol.transfer_encoding",
        ProtocolError::BodyTooLarge { .. } => "serve.protocol.body_too_large",
        ProtocolError::EmptyConnection
        | ProtocolError::ClientGone { .. }
        | ProtocolError::Io(_) => "serve.protocol.other",
    };
    spmv_observe::counter(name, 1);
}

type Routed = (
    u16,
    &'static str,
    &'static str,
    &'static [(&'static str, &'static str)],
    Vec<u8>,
);

fn route(shared: &Shared, request: &Request) -> Routed {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/statz") => statz(shared),
        ("POST", "/v1/recommend") => recommend(shared, &request.body),
        ("POST", "/v1/feedback") => feedback(shared, &request.body),
        ("POST", "/admin/shutdown") if shared.config.enable_admin_shutdown => {
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            (
                200,
                "OK",
                "application/json",
                &[],
                b"{\"status\":\"shutting-down\"}\n".to_vec(),
            )
        }
        ("POST", "/admin/canary/sync") if shared.config.enable_admin_shutdown => {
            canary_sync(shared)
        }
        (_, "/healthz" | "/statz" | "/v1/recommend" | "/v1/feedback") => (
            405,
            "Method Not Allowed",
            "application/json",
            &[],
            error_body("method_not_allowed", "see README: Serving"),
        ),
        _ => (
            404,
            "Not Found",
            "application/json",
            &[],
            error_body("not_found", "unknown path"),
        ),
    }
}

/// Append the swap-observability fields — generation, artifact checksum,
/// advisor mode, canary phase — read as one coherent status.
fn push_status_fields(body: &mut String, status: &spmv_core::OnlineStatus) {
    body.push_str("\"mode\":\"");
    body.push_str(status.mode);
    body.push_str("\",\"model_version\":");
    match status.model_version {
        Some(v) => body.push_str(&v.to_string()),
        None => body.push_str("null"),
    }
    body.push_str(",\"generation\":");
    body.push_str(&status.generation.to_string());
    body.push_str(",\"checksum\":");
    match &status.checksum {
        Some(sum) => {
            body.push('"');
            body.push_str(sum);
            body.push('"');
        }
        None => body.push_str("null"),
    }
    body.push_str(",\"canary\":\"");
    body.push_str(status.canary);
    body.push('"');
}

fn healthz(shared: &Shared) -> Routed {
    let status = shared.online.status();
    let mut body = String::from("{\"status\":\"ok\",");
    push_status_fields(&mut body, &status);
    body.push_str("}\n");
    (200, "OK", "application/json", &[], body.into_bytes())
}

fn statz(shared: &Shared) -> Routed {
    let status = shared.online.status();
    let mut body = String::from("{");
    push_status_fields(&mut body, &status);
    body.push_str(",\"counters\":");
    body.push_str(&spmv_observe::counters_section());
    body.push_str("}\n");
    (200, "OK", "application/json", &[], body.into_bytes())
}

/// Block (bounded) until no retrain is pending or running, then report
/// the canary state. Scripted lifecycle runs use this to make "retrainer
/// done" an explicit point in the request sequence — one deterministic
/// request instead of a polling race. Admin-gated alongside shutdown.
fn canary_sync(shared: &Shared) -> Routed {
    let quiescent = shared.online.wait_quiescent(Duration::from_secs(30));
    let status = shared.online.status();
    let mut body = String::from("{\"status\":\"");
    body.push_str(if quiescent { "quiescent" } else { "busy" });
    body.push_str("\",");
    push_status_fields(&mut body, &status);
    body.push_str("}\n");
    if quiescent {
        (200, "OK", "application/json", &[], body.into_bytes())
    } else {
        (
            503,
            "Service Unavailable",
            "application/json",
            &[],
            body.into_bytes(),
        )
    }
}

/// Classify the body (MatrixMarket vs feature JSON), consult the cache,
/// and compute on miss. Responses are cached only on success: a malformed
/// body costs its sender a full parse every time, and never pollutes the
/// cache.
fn recommend(shared: &Shared, body: &[u8]) -> Routed {
    let trimmed = trim_leading_ws(body);
    if trimmed.starts_with(b"%%MatrixMarket") {
        recommend_matrix(shared, body)
    } else if trimmed.first() == Some(&b'{') {
        recommend_features(shared, trimmed)
    } else {
        (
            400,
            "Bad Request",
            "application/json",
            &[],
            error_body(
                "unrecognized_body",
                "expected a MatrixMarket document or {\"features\":[..17 floats..]}",
            ),
        )
    }
}

fn trim_leading_ws(body: &[u8]) -> &[u8] {
    let start = body
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .unwrap_or(body.len());
    &body[start..]
}

fn ok_json(bytes: Vec<u8>) -> Routed {
    (200, "OK", "application/json", &[], bytes)
}

/// Generation-scoped cache key: the snapshot's generation number leads,
/// then the namespace byte (`'m'`/`'f'`), then the content. A hot-swap
/// therefore changes every key, so a cached answer from generation N can
/// never be served as generation N+1's.
fn scoped_key(generation: &Generation, namespace: u8, content_len: usize) -> Vec<u8> {
    let mut key = Vec::with_capacity(9 + content_len);
    key.extend_from_slice(&generation.number.to_le_bytes());
    key.push(namespace);
    key
}

/// Post-response online accounting for one recommend miss: per-request
/// heuristic fallbacks under a model generation feed the watchdog, and a
/// shadow candidate (if one is scoring) is run on the same input.
fn online_observe<F>(
    shared: &Shared,
    snapshot: &Arc<Generation>,
    response: &spmv_core::RecommendResponse,
    candidate_format: F,
) where
    F: FnOnce(&Generation) -> Format,
{
    if snapshot.handle.mode() == "model" && response.source == RecommendationSource::Heuristic {
        shared.online.note_fallback(snapshot.number);
    }
    if let Some(candidate) = shared.online.shadow_candidate() {
        let _span = spmv_observe::span("serve/request/shadow");
        let format = candidate_format(&candidate);
        shared.online.record_shadow(response.format, format);
    }
}

fn recommend_matrix(shared: &Shared, body: &[u8]) -> Routed {
    spmv_observe::counter("serve.recommend.matrix", 1);
    let snapshot = shared.online.snapshot();
    // Key prefix separates the two request namespaces so a feature-vector
    // key can never alias a MatrixMarket body.
    let mut key = scoped_key(&snapshot, b'm', body.len());
    key.extend_from_slice(body);
    match shared.cache.get_or_reserve(&key) {
        Lookup::Hit(bytes) => ok_json(bytes.to_vec()),
        Lookup::Miss(reservation) => {
            let parsed = {
                let _span = spmv_observe::span("serve/request/parse");
                spmv_matrix::mm::read_matrix_market::<f64, _>(body)
            };
            let matrix = match parsed {
                Ok(m) => m.to_csr(),
                Err(e) => {
                    // Reservation dropped: the key stays uncached and any
                    // concurrent duplicate re-parses for itself.
                    return (
                        400,
                        "Bad Request",
                        "application/json",
                        &[],
                        error_body("bad_matrix", &e.to_string()),
                    );
                }
            };
            let response = {
                let _span = spmv_observe::span("serve/request/model");
                snapshot.handle.recommend_csr(&matrix)
            };
            online_observe(shared, &snapshot, &response, |candidate| {
                candidate.handle.recommend_csr(&matrix).format
            });
            let mut bytes = response.to_json().into_bytes();
            bytes.push(b'\n');
            reservation.fulfill(Arc::new(bytes.clone()));
            ok_json(bytes)
        }
    }
}

/// The wire shape of a pre-extracted request: `{"features":[f0,…,f16]}`.
#[derive(serde::Deserialize)]
struct FeatureRequest {
    features: Vec<f64>,
}

fn recommend_features(shared: &Shared, body: &[u8]) -> Routed {
    spmv_observe::counter("serve.recommend.features", 1);
    let bad = |message: &str| {
        (
            400,
            "Bad Request",
            "application/json",
            &[] as &[_],
            error_body("bad_features", message),
        )
    };
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return bad("feature request body is not UTF-8"),
    };
    let parsed: FeatureRequest = match serde_json::from_str(text) {
        Ok(parsed) => parsed,
        Err(e) => return bad(&format!("unparsable feature request: {e}")),
    };
    if parsed.features.len() != FEATURE_COUNT {
        return bad(&format!(
            "expected exactly {FEATURE_COUNT} features, got {}",
            parsed.features.len()
        ));
    }
    if let Some(v) = parsed.features.iter().find(|v| !v.is_finite()) {
        return bad(&format!("features must be finite, got {v}"));
    }
    let fv = match FeatureVector::from_slice(&parsed.features) {
        Some(fv) => fv,
        None => return bad("feature vector rejected"),
    };
    let snapshot = shared.online.snapshot();
    // Cache key: the 17 exact bit patterns (semantic identity — two
    // textually different JSON bodies with the same values share a key).
    let mut key = scoped_key(&snapshot, b'f', FEATURE_COUNT * 8);
    for v in &parsed.features {
        key.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    match shared.cache.get_or_reserve(&key) {
        Lookup::Hit(bytes) => ok_json(bytes.to_vec()),
        Lookup::Miss(reservation) => {
            let response = {
                let _span = spmv_observe::span("serve/request/model");
                shared.batcher.submit(&snapshot, fv.clone())
            };
            online_observe(shared, &snapshot, &response, |candidate| {
                candidate.handle.recommend_features(&fv).format
            });
            let mut bytes = response.to_json().into_bytes();
            bytes.push(b'\n');
            reservation.fulfill(Arc::new(bytes.clone()));
            ok_json(bytes)
        }
    }
}

/// The wire shape of `POST /v1/feedback`: the features the
/// recommendation was for, the format the client actually ran, the model
/// generation that recommended it, and the outcome — either measured
/// `seconds` or `"status":"failed"` when the format failed outright on
/// the client's hardware.
#[derive(serde::Deserialize)]
struct FeedbackBody {
    features: Vec<f64>,
    format: String,
    #[serde(default)]
    generation: u64,
    #[serde(default)]
    seconds: Option<f64>,
    #[serde(default)]
    status: Option<String>,
}

fn feedback(shared: &Shared, body: &[u8]) -> Routed {
    spmv_observe::counter("serve.feedback.requests", 1);
    let bad = |message: &str| {
        (
            400,
            "Bad Request",
            "application/json",
            &[] as &[_],
            error_body("bad_feedback", message),
        )
    };
    let text = match std::str::from_utf8(trim_leading_ws(body)) {
        Ok(text) => text,
        Err(_) => return bad("feedback body is not UTF-8"),
    };
    let parsed: FeedbackBody = match serde_json::from_str(text) {
        Ok(parsed) => parsed,
        Err(e) => return bad(&format!("unparsable feedback: {e}")),
    };
    if parsed.features.len() != FEATURE_COUNT {
        return bad(&format!(
            "expected exactly {FEATURE_COUNT} features, got {}",
            parsed.features.len()
        ));
    }
    if let Some(v) = parsed.features.iter().find(|v| !v.is_finite()) {
        return bad(&format!("features must be finite, got {v}"));
    }
    let Some(features) = FeatureVector::from_slice(&parsed.features) else {
        return bad("feature vector rejected");
    };
    let Some(format) = Format::ALL
        .iter()
        .copied()
        .find(|f| f.label() == parsed.format)
    else {
        return bad(&format!("unknown format {:?}", parsed.format));
    };
    let outcome = match (parsed.status.as_deref(), parsed.seconds) {
        (Some("failed"), _) => FeedbackOutcome::Failed,
        (None | Some("ok"), Some(seconds)) => FeedbackOutcome::Measured(seconds),
        (None | Some("ok"), None) => {
            return bad("measured feedback requires \"seconds\"");
        }
        (Some(other), _) => {
            return bad(&format!("unknown status {other:?} (expected ok|failed)"));
        }
    };
    let event = FeedbackEvent {
        features,
        format,
        generation: parsed.generation,
        outcome,
    };
    match shared.online.ingest(event) {
        Ok(()) => (
            200,
            "OK",
            "application/json",
            &[],
            b"{\"status\":\"accepted\"}\n".to_vec(),
        ),
        Err(e) => bad(&e.to_string()),
    }
}
