//! A deliberately minimal HTTP/1.1 subset, hand-rolled over byte
//! buffers.
//!
//! The server speaks exactly what its clients need — `POST` with
//! `Content-Length`, `GET` without — and rejects everything else with a
//! typed [`ProtocolError`] that maps to one 4xx/5xx status. Since the
//! persistent-connection rework, a connection carries *many* requests:
//! the parser is incremental ([`parse_request`] consumes one complete
//! request from a reused buffer and reports how many bytes it ate, so
//! pipelined requests queue naturally behind it), and responses carry
//! `Connection: keep-alive` or `Connection: close` according to the
//! negotiated policy — HTTP/1.1 defaults to keep-alive, HTTP/1.0 to
//! close, an explicit `Connection:` request header wins, and the server
//! closes after protocol-level errors, on shutdown, and when a
//! connection reaches its `max-requests` budget. One-shot clients that
//! send `Connection: close` (the CLI, the old loadgen path) see exactly
//! the pre-keep-alive behavior. There is still no chunked transfer and
//! no continuation lines — that restriction is what keeps the parser
//! small enough to exhaustively adversarial-test (`tests/protocol.rs`).
//!
//! Nothing in this module panics on wire input: malformed bytes become
//! `Err` variants, and the `deny(unwrap_used)` lint scope covers the
//! whole crate.

use std::io::{Read, Write};

/// Byte budgets for a single request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Cap on the request line + headers (bytes up to the blank line).
    pub max_header_bytes: usize,
    /// Cap on the declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

/// A parsed request: method, target, lower-cased headers, raw body.
#[derive(Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// The request target path (`/v1/recommend`).
    pub target: String,
    /// HTTP minor version (`1` for HTTP/1.1, `0` for HTTP/1.0).
    pub minor_version: u8,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client is willing to reuse this connection:
    /// an explicit `Connection:` header wins, otherwise HTTP/1.1
    /// defaults to keep-alive and HTTP/1.0 to close.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => {
                let v = v.to_ascii_lowercase();
                if v.split(',').any(|t| t.trim() == "close") {
                    false
                } else if v.split(',').any(|t| t.trim() == "keep-alive") {
                    true
                } else {
                    self.minor_version >= 1
                }
            }
            None => self.minor_version >= 1,
        }
    }
}

/// Every way reading one request can fail. Variants that map to a status
/// code get a response; connection-level variants (the client vanished
/// before a request existed) get silence.
#[derive(Debug)]
pub enum ProtocolError {
    /// EOF before a single byte arrived. Not a request at all — readiness
    /// probes and port scanners do this; it is deliberately invisible to
    /// the request counters so probe frequency cannot perturb the
    /// deterministic manifest section.
    EmptyConnection,
    /// EOF after at least one byte but before the request was complete
    /// (truncated request line, headers, or body).
    ClientGone {
        /// Bytes received before the disconnect.
        bytes_seen: usize,
    },
    /// A socket read timed out before the request completed.
    Timeout,
    /// Any other transport error.
    Io(std::io::Error),
    /// The request line is not `METHOD SP TARGET SP VERSION`.
    BadRequestLine(String),
    /// The version is not HTTP/1.x.
    UnsupportedVersion(String),
    /// Headers exceeded [`Limits::max_header_bytes`].
    HeaderTooLarge {
        /// The configured [`Limits::max_header_bytes`].
        limit: usize,
    },
    /// A header line has no `:` or is not UTF-8.
    BadHeader(String),
    /// A POST arrived without `Content-Length`.
    MissingContentLength,
    /// `Content-Length` is not a base-10 integer.
    BadContentLength(String),
    /// `Transfer-Encoding` was sent; this server only does identity.
    UnsupportedTransferEncoding,
    /// Declared body size exceeds [`Limits::max_body_bytes`]. Detected
    /// before reading the body, so an attacker cannot make the server
    /// buffer it.
    BodyTooLarge {
        /// The configured [`Limits::max_body_bytes`].
        limit: usize,
        /// What the `Content-Length` header declared.
        declared: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::EmptyConnection => write!(f, "connection closed before any byte"),
            ProtocolError::ClientGone { bytes_seen } => {
                write!(
                    f,
                    "client disconnected mid-request after {bytes_seen} bytes"
                )
            }
            ProtocolError::Timeout => write!(f, "timed out reading request"),
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::BadRequestLine(l) => write!(f, "malformed request line {l:?}"),
            ProtocolError::UnsupportedVersion(v) => write!(f, "unsupported version {v:?}"),
            ProtocolError::HeaderTooLarge { limit } => {
                write!(f, "headers exceed {limit} bytes")
            }
            ProtocolError::BadHeader(l) => write!(f, "malformed header line {l:?}"),
            ProtocolError::MissingContentLength => write!(f, "POST without Content-Length"),
            ProtocolError::BadContentLength(v) => write!(f, "bad Content-Length {v:?}"),
            ProtocolError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding not supported")
            }
            ProtocolError::BodyTooLarge { limit, declared } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl ProtocolError {
    /// The `(status, reason, machine-readable kind)` this error maps to,
    /// or `None` when no response can or should be written (the client is
    /// gone, or nothing was ever received).
    pub fn status(&self) -> Option<(u16, &'static str, &'static str)> {
        match self {
            ProtocolError::EmptyConnection
            | ProtocolError::ClientGone { .. }
            | ProtocolError::Io(_) => None,
            ProtocolError::Timeout => Some((408, "Request Timeout", "timeout")),
            ProtocolError::BadRequestLine(_) => Some((400, "Bad Request", "bad_request_line")),
            ProtocolError::UnsupportedVersion(_) => {
                Some((505, "HTTP Version Not Supported", "bad_version"))
            }
            ProtocolError::HeaderTooLarge { .. } => {
                Some((431, "Request Header Fields Too Large", "header_too_large"))
            }
            ProtocolError::BadHeader(_) => Some((400, "Bad Request", "bad_header")),
            ProtocolError::MissingContentLength => {
                Some((411, "Length Required", "missing_content_length"))
            }
            ProtocolError::BadContentLength(_) => Some((400, "Bad Request", "bad_content_length")),
            ProtocolError::UnsupportedTransferEncoding => {
                Some((501, "Not Implemented", "unsupported_transfer_encoding"))
            }
            ProtocolError::BodyTooLarge { .. } => {
                Some((413, "Payload Too Large", "body_too_large"))
            }
        }
    }
}

fn map_io(e: std::io::Error, bytes_seen: usize) -> ProtocolError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ProtocolError::Timeout,
        std::io::ErrorKind::UnexpectedEof if bytes_seen == 0 => ProtocolError::EmptyConnection,
        std::io::ErrorKind::UnexpectedEof => ProtocolError::ClientGone { bytes_seen },
        _ => ProtocolError::Io(e),
    }
}

/// Position right after the first blank line (`\r\n\r\n`, tolerating bare
/// `\n\n`), or `None` if the headers have not terminated yet.
fn header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Result of trying to parse one request out of a connection buffer.
pub enum Parse {
    /// The buffer does not yet hold a complete request; read more bytes.
    Partial,
    /// One complete request, consuming the first `usize` bytes of the
    /// buffer. Pipelined bytes beyond that belong to the next request.
    Done(Request, usize),
}

/// Try to parse exactly one request from the front of `buf`.
///
/// Incremental and restartable: feed it the same buffer again after
/// appending more bytes. Limits are enforced per state — headers that
/// never terminate within `max_header_bytes` fail with 431 *before* the
/// request completes, and an oversized declared body fails with 413
/// from the header alone, before any body byte is read.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parse, ProtocolError> {
    let head_len = match header_end(buf) {
        Some(end) => end,
        None => {
            if buf.len() > limits.max_header_bytes {
                return Err(ProtocolError::HeaderTooLarge {
                    limit: limits.max_header_bytes,
                });
            }
            return Ok(Parse::Partial);
        }
    };
    if head_len > limits.max_header_bytes {
        return Err(ProtocolError::HeaderTooLarge {
            limit: limits.max_header_bytes,
        });
    }

    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| ProtocolError::BadHeader("non-UTF-8 header bytes".to_string()))?;
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_string(), t.to_string(), v),
        _ => return Err(ProtocolError::BadRequestLine(request_line.to_string())),
    };
    let minor_version = match version.strip_prefix("HTTP/1.") {
        Some(minor) => minor
            .parse::<u8>()
            .map_err(|_| ProtocolError::UnsupportedVersion(version.to_string()))?,
        None => return Err(ProtocolError::UnsupportedVersion(version.to_string())),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ProtocolError::BadHeader(line.to_string()))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if header("transfer-encoding").is_some() {
        return Err(ProtocolError::UnsupportedTransferEncoding);
    }
    let declared = match header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ProtocolError::BadContentLength(v.to_string()))?,
        None if method == "POST" => return Err(ProtocolError::MissingContentLength),
        None => 0,
    };
    if declared > limits.max_body_bytes {
        return Err(ProtocolError::BodyTooLarge {
            limit: limits.max_body_bytes,
            declared,
        });
    }
    if buf.len() - head_len < declared {
        return Ok(Parse::Partial);
    }

    let body = buf[head_len..head_len + declared].to_vec();
    Ok(Parse::Done(
        Request {
            method,
            target,
            minor_version,
            headers,
            body,
        },
        head_len + declared,
    ))
}

/// Read exactly one request from `stream` under `limits` (blocking
/// convenience over [`parse_request`] for one-shot callers and tests).
/// Pipelined bytes beyond the first request are read but ignored.
///
/// The caller is expected to have armed socket read timeouts; timeouts
/// surface as [`ProtocolError::Timeout`].
pub fn read_request<R: Read>(stream: &mut R, limits: &Limits) -> Result<Request, ProtocolError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        match parse_request(&buf, limits)? {
            Parse::Done(request, _consumed) => return Ok(request),
            Parse::Partial => {}
        }
        let n = stream.read(&mut chunk).map_err(|e| map_io(e, buf.len()))?;
        if n == 0 {
            return Err(if buf.is_empty() {
                ProtocolError::EmptyConnection
            } else {
                ProtocolError::ClientGone {
                    bytes_seen: buf.len(),
                }
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Append a complete response (status line, standard headers, body) to
/// `out`. `keep_alive` selects the `Connection:` header; the caller owns
/// actually closing (or not closing) the transport to match.
pub fn render_response_into(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) {
    out.extend_from_slice(b"HTTP/1.1 ");
    let mut code = [0u8; 3];
    code[0] = b'0' + ((status / 100) % 10) as u8;
    code[1] = b'0' + ((status / 10) % 10) as u8;
    code[2] = b'0' + (status % 10) as u8;
    out.extend_from_slice(&code);
    out.push(b' ');
    out.extend_from_slice(reason.as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    let mut len_buf = [0u8; 20];
    let mut n = body.len();
    let mut i = len_buf.len();
    loop {
        i -= 1;
        len_buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&len_buf[i..]);
    if keep_alive {
        out.extend_from_slice(b"\r\nConnection: keep-alive\r\n");
    } else {
        out.extend_from_slice(b"\r\nConnection: close\r\n");
    }
    for (name, value) in extra_headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
}

/// Write a complete `Connection: close` response and flush — the
/// blocking convenience for one-shot paths (overload shedding, tests).
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(128 + body.len());
    render_response_into(
        &mut out,
        status,
        reason,
        content_type,
        extra_headers,
        body,
        false,
    );
    stream.write_all(&out)?;
    stream.flush()
}

/// Escape a string for embedding in a JSON literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The uniform error body: `{"error":"<kind>","message":"<detail>"}`.
pub fn error_body(kind: &str, message: &str) -> Vec<u8> {
    format!(
        "{{\"error\":\"{}\",\"message\":\"{}\"}}\n",
        escape_json(kind),
        escape_json(message)
    )
    .into_bytes()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, ProtocolError> {
        read_request(
            &mut std::io::Cursor::new(bytes.to_vec()),
            &Limits::default(),
        )
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /v1/recommend HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/recommend");
        assert_eq!(req.minor_version, 1);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_get_without_length() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn tolerates_bare_lf_terminators() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn empty_connection_is_not_a_request() {
        assert!(matches!(parse(b""), Err(ProtocolError::EmptyConnection)));
        assert!(parse(b"").unwrap_err().status().is_none());
    }

    #[test]
    fn truncated_request_line_is_client_gone() {
        assert!(matches!(
            parse(b"POST /v1/reco"),
            Err(ProtocolError::ClientGone { bytes_seen: 13 })
        ));
    }

    #[test]
    fn truncated_body_is_client_gone() {
        let e = parse(b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").unwrap_err();
        assert!(matches!(e, ProtocolError::ClientGone { .. }));
    }

    #[test]
    fn bad_request_line_maps_to_400() {
        let e = parse(b"NONSENSE\r\n\r\n").unwrap_err();
        assert!(matches!(e, ProtocolError::BadRequestLine(_)));
        assert_eq!(e.status().unwrap().0, 400);
    }

    #[test]
    fn http2_preface_is_rejected() {
        let e = parse(b"PRI * HTTP/2.0\r\n\r\n").unwrap_err();
        assert_eq!(e.status().unwrap().0, 505);
    }

    #[test]
    fn non_numeric_content_length_maps_to_400() {
        let e = parse(b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n").unwrap_err();
        assert!(matches!(e, ProtocolError::BadContentLength(_)));
        assert_eq!(e.status().unwrap().0, 400);
    }

    #[test]
    fn negative_content_length_maps_to_400() {
        let e = parse(b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n").unwrap_err();
        assert!(matches!(e, ProtocolError::BadContentLength(_)));
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_reading() {
        let limits = Limits {
            max_header_bytes: 1024,
            max_body_bytes: 10,
        };
        // Note: no body bytes follow — detection is from the header alone.
        let e = read_request(
            &mut std::io::Cursor::new(b"POST /x HTTP/1.1\r\nContent-Length: 11\r\n\r\n".to_vec()),
            &limits,
        )
        .unwrap_err();
        assert!(matches!(
            e,
            ProtocolError::BodyTooLarge {
                limit: 10,
                declared: 11
            }
        ));
        assert_eq!(e.status().unwrap().0, 413);
    }

    #[test]
    fn post_without_length_maps_to_411() {
        let e = parse(b"POST /x HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(e.status().unwrap().0, 411);
    }

    #[test]
    fn chunked_encoding_maps_to_501() {
        let e = parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(e.status().unwrap().0, 501);
    }

    #[test]
    fn oversized_headers_map_to_431() {
        let mut req = b"GET /x HTTP/1.1\r\n".to_vec();
        req.extend(std::iter::repeat_n(b'a', 20 * 1024));
        let e = parse(&req).unwrap_err();
        assert!(matches!(e, ProtocolError::HeaderTooLarge { .. }));
        assert_eq!(e.status().unwrap().0, 431);
    }

    #[test]
    fn non_utf8_headers_map_to_400() {
        let e = parse(b"GET /\xff\xfe HTTP/1.1\r\nX: \xff\r\n\r\n").unwrap_err();
        assert!(matches!(e, ProtocolError::BadHeader(_)));
    }

    #[test]
    fn excess_body_bytes_are_left_for_the_pipeline() {
        // One-shot read_request ignores them; the incremental parser
        // reports the exact consumed length so they become request 2.
        let req = parse(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nabEXTRA").unwrap();
        assert_eq!(req.body, b"ab");
        match parse_request(
            b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nabEXTRA",
            &Limits::default(),
        )
        .unwrap()
        {
            Parse::Done(req, consumed) => {
                assert_eq!(req.body, b"ab");
                assert_eq!(
                    consumed,
                    b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nab".len()
                );
            }
            Parse::Partial => panic!("complete request must parse"),
        }
    }

    #[test]
    fn incremental_parse_reports_partial_until_complete() {
        let full = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let limits = Limits::default();
        for cut in 0..full.len() {
            match parse_request(&full[..cut], &limits).unwrap() {
                Parse::Partial => {}
                Parse::Done(..) => panic!("cut at {cut} is incomplete"),
            }
        }
        assert!(matches!(
            parse_request(full, &limits).unwrap(),
            Parse::Done(_, n) if n == full.len()
        ));
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let wire = b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/recommend HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let limits = Limits::default();
        let (first, n1) = match parse_request(wire, &limits).unwrap() {
            Parse::Done(r, n) => (r, n),
            Parse::Partial => panic!(),
        };
        assert_eq!(first.target, "/healthz");
        let (second, n2) = match parse_request(&wire[n1..], &limits).unwrap() {
            Parse::Done(r, n) => (r, n),
            Parse::Partial => panic!(),
        };
        assert_eq!(second.target, "/v1/recommend");
        assert_eq!(second.body, b"hi");
        assert_eq!(n1 + n2, wire.len());
    }

    #[test]
    fn keep_alive_negotiation_follows_version_and_header() {
        let req = parse(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive(), "1.1 defaults to keep-alive");
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive(), "1.0 defaults to close");
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive(), "explicit close wins");
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive(), "explicit keep-alive wins");
    }

    #[test]
    fn response_wire_format_is_complete() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "Service Unavailable",
            "application/json",
            &[("Retry-After", "1")],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        // The blocking one-shot writer always closes; persistent
        // connections render with keep_alive=true instead.
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn rendered_keep_alive_response_advertises_reuse() {
        let mut out = Vec::new();
        render_response_into(
            &mut out,
            200,
            "OK",
            "application/json",
            &[],
            b"{\"ok\":true}",
            true,
        );
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_bodies_escape_json() {
        let body = String::from_utf8(error_body("bad_matrix", "line 3: \"oops\"\n")).unwrap();
        assert_eq!(
            body,
            "{\"error\":\"bad_matrix\",\"message\":\"line 3: \\\"oops\\\"\\n\"}\n"
        );
    }
}
