//! Sharded single-flight LRU cache over serialized recommendation
//! responses.
//!
//! Keyed by *request content* (the raw MatrixMarket body, or the bit
//! patterns of a feature vector), valued by the exact response bytes, so
//! a cache hit is bit-identical to the cold-miss response it memoizes.
//!
//! ## Sharding — by key, never by worker
//!
//! The cache is split into [`DEFAULT_SHARDS`] independent shards, each
//! with its own mutex, condvar, and LRU clock; a key's home shard is a
//! pure function of its content hash. That is a deliberate choice over
//! per-worker caches: which *worker shard* serves a connection is
//! scheduling (one-shot clients arrive on arbitrary ephemeral
//! connections), and per-worker caches would make hit/miss totals
//! depend on connection placement — breaking the invariant that the
//! deterministic manifest section is a pure function of the request
//! mix. Key-sharding keeps every identical request in one shard, so
//! single-flight and the `1 miss + n-1 hits` accounting hold at any
//! worker count, while the mutex contention of the old single-lock
//! design is split `DEFAULT_SHARDS` ways.
//!
//! ## Single flight
//!
//! The first arrival for a key inserts a *pending* slot and computes; any
//! concurrent arrival for the same key blocks on the slot instead of
//! recomputing, and is counted as a hit. For `n` identical well-formed
//! requests the tally is always 1 miss + `n-1` hits, no matter how the
//! requests interleave across worker shards — the property the
//! 1-vs-4-worker manifest diff in CI depends on.
//!
//! ## Collision safety
//!
//! Slots are found by 64-bit FNV-1a hash *and then* full-key comparison;
//! two keys that collide in the hash coexist as separate slots and never
//! alias each other's responses.
//!
//! Lookup is a linear scan over the shard's slot vector — deliberately:
//! per-shard capacity is a handful-to-hundreds knob, the scan is
//! branch-predictable, and it keeps eviction (true least-recently-used
//! within the shard, pending slots pinned) free of auxiliary index
//! structures that would have to stay coherent under the condvar dance.
//! Eviction counts are deterministic for a given build because the
//! shard count is a compile-time constant, not a deployment knob.

use std::sync::{Arc, Condvar, Mutex};

/// Number of key-hash shards. Fixed at compile time so cache behavior
/// (including eviction under pressure) never varies with `--workers`.
pub const DEFAULT_SHARDS: usize = 8;

/// 64-bit FNV-1a (the workspace's standard content hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct Slot {
    hash: u64,
    key: Vec<u8>,
    /// `None` while the first arrival is still computing.
    value: Option<Arc<Vec<u8>>>,
    last_used: u64,
}

struct Inner {
    slots: Vec<Slot>,
    tick: u64,
}

impl Inner {
    fn position(&self, hash: u64, key: &[u8]) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.hash == hash && s.key == key)
    }

    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.slots[idx].last_used = self.tick;
    }

    /// Evict completed least-recently-used slots until at most `capacity`
    /// remain. Pending slots are pinned (their reservations own them).
    fn evict_to(&mut self, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.slots.len() > capacity {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.value.is_some())
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    self.slots.swap_remove(i);
                    evicted += 1;
                }
                None => break, // everything pending; over-capacity is transient
            }
        }
        evicted
    }
}

/// One key-hash shard: its own lock, waiters, and LRU clock.
struct CacheShard {
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl CacheShard {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Shard state is only ever mutated under this lock by code that
        // does not panic; if it somehow did, serving stale-but-complete
        // slots is still sound, so shrug the poison off.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// What a lookup resolved to.
pub enum Lookup<'a> {
    /// The cached (or concurrently computed) response bytes.
    Hit(Arc<Vec<u8>>),
    /// This caller must compute and then [`Reservation::fulfill`].
    Miss(Reservation<'a>),
}

/// The obligation created by a miss: the pending slot this caller must
/// fill. Dropping it unfulfilled (the compute path failed) removes the
/// slot and wakes waiters so they can take over.
pub struct Reservation<'a> {
    shard: Option<&'a CacheShard>,
    shard_capacity: usize,
    hash: u64,
    key: Vec<u8>,
}

impl Reservation<'_> {
    /// Publish the computed response and wake every waiter.
    pub fn fulfill(mut self, value: Arc<Vec<u8>>) {
        if let Some(shard) = self.shard.take() {
            {
                let mut inner = shard.lock();
                if let Some(idx) = inner.position(self.hash, &self.key) {
                    inner.slots[idx].value = Some(value);
                    inner.touch(idx);
                }
                let evicted = inner.evict_to(self.shard_capacity);
                if evicted > 0 {
                    spmv_observe::counter("serve.cache.evictions", evicted);
                }
            }
            shard.cond.notify_all();
        }
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        if let Some(shard) = self.shard.take() {
            {
                let mut inner = shard.lock();
                if let Some(idx) = inner.position(self.hash, &self.key) {
                    if inner.slots[idx].value.is_none() {
                        inner.slots.swap_remove(idx);
                    }
                }
            }
            shard.cond.notify_all();
        }
    }
}

/// The cache. `capacity == 0` disables it: every lookup is a miss with a
/// no-op reservation, and nothing is retained.
pub struct ResponseCache {
    /// Per-shard retained-slot budget; total capacity is spread evenly.
    shard_capacity: usize,
    disabled: bool,
    hasher: fn(&[u8]) -> u64,
    shards: Vec<CacheShard>,
}

impl ResponseCache {
    /// A cache holding up to `capacity` completed responses, spread over
    /// [`DEFAULT_SHARDS`] key-hash shards.
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (tests use 1 to pin exact
    /// global LRU ordering).
    pub fn with_shards(capacity: usize, nshards: usize) -> ResponseCache {
        let nshards = nshards.max(1);
        ResponseCache {
            shard_capacity: capacity.div_ceil(nshards),
            disabled: capacity == 0,
            hasher: fnv1a,
            shards: (0..nshards)
                .map(|_| CacheShard {
                    inner: Mutex::new(Inner {
                        slots: Vec::new(),
                        tick: 0,
                    }),
                    cond: Condvar::new(),
                })
                .collect(),
        }
    }

    /// Test hook: a single-shard cache with a custom (e.g. constant)
    /// hash function, for exercising the collision path on demand.
    #[doc(hidden)]
    pub fn with_hasher(capacity: usize, hasher: fn(&[u8]) -> u64) -> ResponseCache {
        ResponseCache {
            hasher,
            ..ResponseCache::with_shards(capacity, 1)
        }
    }

    fn shard_of(&self, hash: u64) -> &CacheShard {
        // High bits: FNV-1a mixes them well, and the slot scan already
        // compares the full hash so no entropy is wasted.
        let idx = (hash >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Look `key` up; either return the (possibly awaited) response bytes
    /// or make this caller responsible for computing them.
    pub fn get_or_reserve(&self, key: &[u8]) -> Lookup<'_> {
        if self.disabled {
            spmv_observe::counter("serve.cache.misses", 1);
            return Lookup::Miss(Reservation {
                shard: None,
                shard_capacity: 0,
                hash: 0,
                key: Vec::new(),
            });
        }
        let hash = (self.hasher)(key);
        let shard = self.shard_of(hash);
        let mut inner = shard.lock();
        loop {
            match inner.position(hash, key) {
                Some(idx) if inner.slots[idx].value.is_some() => {
                    inner.touch(idx);
                    let value = match &inner.slots[idx].value {
                        Some(v) => Arc::clone(v),
                        None => continue, // unreachable: guarded above
                    };
                    spmv_observe::counter("serve.cache.hits", 1);
                    return Lookup::Hit(value);
                }
                Some(_pending) => {
                    // Another worker is computing this exact key: wait for
                    // it instead of redoing the work (single flight).
                    inner = shard
                        .cond
                        .wait(inner)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                None => {
                    inner.tick += 1;
                    let last_used = inner.tick;
                    inner.slots.push(Slot {
                        hash,
                        key: key.to_vec(),
                        value: None,
                        last_used,
                    });
                    spmv_observe::counter("serve.cache.misses", 1);
                    return Lookup::Miss(Reservation {
                        shard: Some(shard),
                        shard_capacity: self.shard_capacity,
                        hash,
                        key: key.to_vec(),
                    });
                }
            }
        }
    }

    /// Whether a *completed* entry for `key` is resident (no recency bump,
    /// no counters). Test/introspection helper.
    pub fn contains(&self, key: &[u8]) -> bool {
        if self.disabled {
            return false;
        }
        let hash = (self.hasher)(key);
        let shard = self.shard_of(hash);
        let inner = shard.lock();
        inner
            .position(hash, key)
            .is_some_and(|idx| inner.slots[idx].value.is_some())
    }

    /// Number of resident slots (completed + pending), summed across
    /// shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().slots.len()).sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn fill(cache: &ResponseCache, key: &[u8], value: &[u8]) {
        match cache.get_or_reserve(key) {
            Lookup::Miss(res) => res.fulfill(Arc::new(value.to_vec())),
            Lookup::Hit(_) => panic!("expected a miss for {key:?}"),
        }
    }

    #[test]
    fn hit_returns_the_fulfilled_bytes() {
        let cache = ResponseCache::new(4);
        fill(&cache, b"k", b"response");
        match cache.get_or_reserve(b"k") {
            Lookup::Hit(v) => assert_eq!(&**v, b"response"),
            Lookup::Miss(_) => panic!("expected hit"),
        };
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        // Single shard pins global LRU order.
        let cache = ResponseCache::with_shards(2, 1);
        fill(&cache, b"a", b"1");
        fill(&cache, b"b", b"2");
        // Touch `a`, making `b` the LRU victim.
        assert!(matches!(cache.get_or_reserve(b"a"), Lookup::Hit(_)));
        fill(&cache, b"c", b"3");
        assert!(cache.contains(b"a"));
        assert!(!cache.contains(b"b"), "b was least recently used");
        assert!(cache.contains(b"c"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sharded_cache_retains_at_most_capacity_overall() {
        let cache = ResponseCache::new(16);
        for i in 0..64u32 {
            fill(&cache, &i.to_le_bytes(), b"v");
        }
        // Per-shard budget is ceil(16/8) = 2; with 8 shards the total
        // retained population never exceeds the requested capacity.
        assert!(cache.len() <= 16, "len = {}", cache.len());
        assert!(!cache.is_empty());
    }

    #[test]
    fn colliding_hashes_do_not_alias() {
        // Constant hasher: every key collides (and lands in one shard).
        let cache = ResponseCache::with_hasher(4, |_| 42);
        fill(&cache, b"alpha", b"A");
        fill(&cache, b"beta", b"B");
        match cache.get_or_reserve(b"alpha") {
            Lookup::Hit(v) => assert_eq!(&**v, b"A"),
            Lookup::Miss(_) => panic!("alpha should be resident"),
        }
        match cache.get_or_reserve(b"beta") {
            Lookup::Hit(v) => assert_eq!(&**v, b"B"),
            Lookup::Miss(_) => panic!("beta should be resident"),
        };
    }

    #[test]
    fn zero_capacity_never_retains() {
        let cache = ResponseCache::new(0);
        fill(&cache, b"k", b"v");
        assert!(matches!(cache.get_or_reserve(b"k"), Lookup::Miss(_)));
        assert!(cache.is_empty());
    }

    #[test]
    fn aborted_reservation_unblocks_the_key() {
        let cache = ResponseCache::new(4);
        match cache.get_or_reserve(b"k") {
            Lookup::Miss(res) => drop(res), // compute "failed"
            Lookup::Hit(_) => panic!(),
        }
        // The key is free again: the next arrival recomputes.
        assert!(matches!(cache.get_or_reserve(b"k"), Lookup::Miss(_)));
    }

    #[test]
    fn single_flight_waiters_get_the_leaders_bytes() {
        let cache = Arc::new(ResponseCache::new(4));
        let res = match cache.get_or_reserve(b"k") {
            Lookup::Miss(res) => res,
            Lookup::Hit(_) => panic!(),
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || match cache.get_or_reserve(b"k") {
                    Lookup::Hit(v) => v,
                    Lookup::Miss(_) => panic!("waiter must not recompute"),
                })
            })
            .collect();
        // Give the waiters time to block on the pending slot.
        std::thread::sleep(std::time::Duration::from_millis(30));
        res.fulfill(Arc::new(b"computed-once".to_vec()));
        for w in waiters {
            assert_eq!(&**w.join().unwrap(), b"computed-once");
        }
    }

    #[test]
    fn pending_slots_are_never_evicted() {
        let cache = ResponseCache::with_shards(1, 1);
        let pending = match cache.get_or_reserve(b"pinned") {
            Lookup::Miss(res) => res,
            Lookup::Hit(_) => panic!(),
        };
        fill(&cache, b"other", b"x"); // over capacity while `pinned` is pending
        pending.fulfill(Arc::new(b"done".to_vec()));
        assert!(cache.contains(b"pinned"));
        assert!(cache.len() <= 1 || cache.contains(b"pinned"));
    }

    #[test]
    fn hit_miss_totals_are_shard_count_invariant() {
        // The same key sequence produces identical hit/miss behavior at
        // 1 and 8 shards: every key's single flight lives in its home
        // shard, so lookups resolve the same way.
        for nshards in [1usize, 8] {
            let cache = ResponseCache::with_shards(64, nshards);
            let keys: Vec<Vec<u8>> = (0..16u32).map(|i| i.to_le_bytes().to_vec()).collect();
            for k in &keys {
                assert!(
                    matches!(cache.get_or_reserve(k), Lookup::Miss(_)),
                    "first sight must miss at {nshards} shards"
                );
                // Unfulfilled reservation dropped: recomputes next time.
            }
            for k in &keys {
                fill(&cache, k, b"v");
            }
            for k in &keys {
                assert!(
                    matches!(cache.get_or_reserve(k), Lookup::Hit(_)),
                    "fulfilled key must hit at {nshards} shards"
                );
            }
        }
    }
}
