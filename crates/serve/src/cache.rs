//! Single-flight LRU cache over serialized recommendation responses.
//!
//! Keyed by *request content* (the raw MatrixMarket body, or the bit
//! patterns of a feature vector), valued by the exact response bytes, so
//! a cache hit is bit-identical to the cold-miss response it memoizes.
//!
//! ## Single flight
//!
//! The first arrival for a key inserts a *pending* slot and computes; any
//! concurrent arrival for the same key blocks on the slot instead of
//! recomputing, and is counted as a hit. This is what makes the cache
//! counters a pure function of the request mix: for `n` identical
//! well-formed requests the tally is always 1 miss + `n-1` hits, no
//! matter how the requests interleave across worker threads — the
//! property the 1-vs-4-worker manifest diff in CI depends on.
//!
//! ## Collision safety
//!
//! Slots are found by 64-bit FNV-1a hash *and then* full-key comparison;
//! two keys that collide in the hash coexist as separate slots and never
//! alias each other's responses.
//!
//! Lookup is a linear scan over the slot vector — deliberately: capacity
//! is a handful-to-thousands knob, the scan is branch-predictable, and it
//! keeps eviction (true least-recently-used, pending slots pinned) free
//! of auxiliary index structures that would have to stay coherent under
//! the condvar dance.

use std::sync::{Arc, Condvar, Mutex};

/// 64-bit FNV-1a (the workspace's standard content hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct Slot {
    hash: u64,
    key: Vec<u8>,
    /// `None` while the first arrival is still computing.
    value: Option<Arc<Vec<u8>>>,
    last_used: u64,
}

struct Inner {
    slots: Vec<Slot>,
    tick: u64,
}

impl Inner {
    fn position(&self, hash: u64, key: &[u8]) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.hash == hash && s.key == key)
    }

    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.slots[idx].last_used = self.tick;
    }

    /// Evict completed least-recently-used slots until at most `capacity`
    /// remain. Pending slots are pinned (their reservations own them).
    fn evict_to(&mut self, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.slots.len() > capacity {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.value.is_some())
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    self.slots.swap_remove(i);
                    evicted += 1;
                }
                None => break, // everything pending; over-capacity is transient
            }
        }
        evicted
    }
}

/// What a lookup resolved to.
pub enum Lookup<'a> {
    /// The cached (or concurrently computed) response bytes.
    Hit(Arc<Vec<u8>>),
    /// This caller must compute and then [`Reservation::fulfill`].
    Miss(Reservation<'a>),
}

/// The obligation created by a miss: the pending slot this caller must
/// fill. Dropping it unfulfilled (the compute path failed) removes the
/// slot and wakes waiters so they can take over.
pub struct Reservation<'a> {
    cache: Option<&'a ResponseCache>,
    hash: u64,
    key: Vec<u8>,
}

impl Reservation<'_> {
    /// Publish the computed response and wake every waiter.
    pub fn fulfill(mut self, value: Arc<Vec<u8>>) {
        if let Some(cache) = self.cache.take() {
            {
                let mut inner = cache.lock();
                if let Some(idx) = inner.position(self.hash, &self.key) {
                    inner.slots[idx].value = Some(value);
                    inner.touch(idx);
                }
                let evicted = inner.evict_to(cache.capacity);
                if evicted > 0 {
                    spmv_observe::counter("serve.cache.evictions", evicted);
                }
            }
            cache.cond.notify_all();
        }
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        if let Some(cache) = self.cache.take() {
            {
                let mut inner = cache.lock();
                if let Some(idx) = inner.position(self.hash, &self.key) {
                    if inner.slots[idx].value.is_none() {
                        inner.slots.swap_remove(idx);
                    }
                }
            }
            cache.cond.notify_all();
        }
    }
}

/// The cache. `capacity == 0` disables it: every lookup is a miss with a
/// no-op reservation, and nothing is retained.
pub struct ResponseCache {
    capacity: usize,
    hasher: fn(&[u8]) -> u64,
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl ResponseCache {
    /// A cache holding up to `capacity` completed responses.
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache {
            capacity,
            hasher: fnv1a,
            inner: Mutex::new(Inner {
                slots: Vec::new(),
                tick: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Test hook: a cache with a custom (e.g. constant) hash function, for
    /// exercising the collision path on demand.
    #[doc(hidden)]
    pub fn with_hasher(capacity: usize, hasher: fn(&[u8]) -> u64) -> ResponseCache {
        ResponseCache {
            hasher,
            ..ResponseCache::new(capacity)
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Cache state is only ever mutated under this lock by code that
        // does not panic; if it somehow did, serving stale-but-complete
        // slots is still sound, so shrug the poison off.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Look `key` up; either return the (possibly awaited) response bytes
    /// or make this caller responsible for computing them.
    pub fn get_or_reserve(&self, key: &[u8]) -> Lookup<'_> {
        if self.capacity == 0 {
            spmv_observe::counter("serve.cache.misses", 1);
            return Lookup::Miss(Reservation {
                cache: None,
                hash: 0,
                key: Vec::new(),
            });
        }
        let hash = (self.hasher)(key);
        let mut inner = self.lock();
        loop {
            match inner.position(hash, key) {
                Some(idx) if inner.slots[idx].value.is_some() => {
                    inner.touch(idx);
                    let value = match &inner.slots[idx].value {
                        Some(v) => Arc::clone(v),
                        None => continue, // unreachable: guarded above
                    };
                    spmv_observe::counter("serve.cache.hits", 1);
                    return Lookup::Hit(value);
                }
                Some(_pending) => {
                    // Another worker is computing this exact key: wait for
                    // it instead of redoing the work (single flight).
                    inner = self
                        .cond
                        .wait(inner)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                None => {
                    inner.tick += 1;
                    let last_used = inner.tick;
                    inner.slots.push(Slot {
                        hash,
                        key: key.to_vec(),
                        value: None,
                        last_used,
                    });
                    spmv_observe::counter("serve.cache.misses", 1);
                    return Lookup::Miss(Reservation {
                        cache: Some(self),
                        hash,
                        key: key.to_vec(),
                    });
                }
            }
        }
    }

    /// Whether a *completed* entry for `key` is resident (no recency bump,
    /// no counters). Test/introspection helper.
    pub fn contains(&self, key: &[u8]) -> bool {
        let hash = (self.hasher)(key);
        let inner = self.lock();
        inner
            .position(hash, key)
            .is_some_and(|idx| inner.slots[idx].value.is_some())
    }

    /// Number of resident slots (completed + pending).
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn fill(cache: &ResponseCache, key: &[u8], value: &[u8]) {
        match cache.get_or_reserve(key) {
            Lookup::Miss(res) => res.fulfill(Arc::new(value.to_vec())),
            Lookup::Hit(_) => panic!("expected a miss for {key:?}"),
        }
    }

    #[test]
    fn hit_returns_the_fulfilled_bytes() {
        let cache = ResponseCache::new(4);
        fill(&cache, b"k", b"response");
        match cache.get_or_reserve(b"k") {
            Lookup::Hit(v) => assert_eq!(&**v, b"response"),
            Lookup::Miss(_) => panic!("expected hit"),
        };
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = ResponseCache::new(2);
        fill(&cache, b"a", b"1");
        fill(&cache, b"b", b"2");
        // Touch `a`, making `b` the LRU victim.
        assert!(matches!(cache.get_or_reserve(b"a"), Lookup::Hit(_)));
        fill(&cache, b"c", b"3");
        assert!(cache.contains(b"a"));
        assert!(!cache.contains(b"b"), "b was least recently used");
        assert!(cache.contains(b"c"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn colliding_hashes_do_not_alias() {
        // Constant hasher: every key collides.
        let cache = ResponseCache::with_hasher(4, |_| 42);
        fill(&cache, b"alpha", b"A");
        fill(&cache, b"beta", b"B");
        match cache.get_or_reserve(b"alpha") {
            Lookup::Hit(v) => assert_eq!(&**v, b"A"),
            Lookup::Miss(_) => panic!("alpha should be resident"),
        }
        match cache.get_or_reserve(b"beta") {
            Lookup::Hit(v) => assert_eq!(&**v, b"B"),
            Lookup::Miss(_) => panic!("beta should be resident"),
        };
    }

    #[test]
    fn zero_capacity_never_retains() {
        let cache = ResponseCache::new(0);
        fill(&cache, b"k", b"v");
        assert!(matches!(cache.get_or_reserve(b"k"), Lookup::Miss(_)));
        assert!(cache.is_empty());
    }

    #[test]
    fn aborted_reservation_unblocks_the_key() {
        let cache = ResponseCache::new(4);
        match cache.get_or_reserve(b"k") {
            Lookup::Miss(res) => drop(res), // compute "failed"
            Lookup::Hit(_) => panic!(),
        }
        // The key is free again: the next arrival recomputes.
        assert!(matches!(cache.get_or_reserve(b"k"), Lookup::Miss(_)));
    }

    #[test]
    fn single_flight_waiters_get_the_leaders_bytes() {
        let cache = Arc::new(ResponseCache::new(4));
        let res = match cache.get_or_reserve(b"k") {
            Lookup::Miss(res) => res,
            Lookup::Hit(_) => panic!(),
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || match cache.get_or_reserve(b"k") {
                    Lookup::Hit(v) => v,
                    Lookup::Miss(_) => panic!("waiter must not recompute"),
                })
            })
            .collect();
        // Give the waiters time to block on the pending slot.
        std::thread::sleep(std::time::Duration::from_millis(30));
        res.fulfill(Arc::new(b"computed-once".to_vec()));
        for w in waiters {
            assert_eq!(&**w.join().unwrap(), b"computed-once");
        }
    }

    #[test]
    fn pending_slots_are_never_evicted() {
        let cache = ResponseCache::new(1);
        let pending = match cache.get_or_reserve(b"pinned") {
            Lookup::Miss(res) => res,
            Lookup::Hit(_) => panic!(),
        };
        fill(&cache, b"other", b"x"); // over capacity while `pinned` is pending
        pending.fulfill(Arc::new(b"done".to_vec()));
        assert!(cache.contains(b"pinned"));
        assert!(cache.len() <= 1 || cache.contains(b"pinned"));
    }
}
