//! The per-shard event loop: shared-nothing epoll shards driving
//! per-connection HTTP/1.1 state machines.
//!
//! Each shard is one thread owning one [`Epoll`] instance, a token→
//! connection map, and nothing else mutable — the nginx/redis shape.
//! All shards register the *same* nonblocking listener with
//! `EPOLLEXCLUSIVE`, so a connect wakes exactly one shard, which
//! accepts and then owns that connection for its whole life. Requests
//! are parsed incrementally from a per-connection reused buffer
//! ([`parse_request`]), dispatched inline on the shard thread, and the
//! responses are appended to a per-connection write buffer flushed as
//! the socket allows.
//!
//! ## Connection state machine
//!
//! ```text
//!   accept ──▶ Active ──(read: bytes → parse → dispatch → respond)──┐
//!                │  ▲                                               │
//!                │  └── keep-alive: response flushed, parse again ◀─┘
//!                │
//!                ├── Connection: close served, all input consumed ──▶ close
//!                ├── protocol error / 408 / shed: respond ──▶ Draining ──▶ close
//!                └── EOF / reset / deadline ──▶ close
//! ```
//!
//! *Draining* exists for the RST problem: closing a socket with unread
//! request bytes makes the kernel send RST instead of FIN, which can
//! destroy the 413/503 response sitting in the client's receive buffer.
//! A draining connection discards input for a short window (or until
//! the peer's EOF) so the close is an orderly FIN. Connections whose
//! input was fully consumed skip the window and close immediately —
//! the one-shot `Connection: close` fast path pays nothing.
//!
//! ## Deadlines
//!
//! Timers ride on the bounded `epoll_wait` timeout: every tick the
//! shard sweeps its connections. A connection stalled mid-request (or
//! silent before its first request) past `read_timeout_ms` gets `408`
//! — the Slowloris defense the blocking server enforced with socket
//! timeouts. An *idle* keep-alive connection (≥1 request served,
//! nothing buffered) is closed silently after `idle_timeout_ms`; that
//! silence is deliberate, because an idle close is not an error and
//! must not perturb the mix-pure counters.
//!
//! ## Determinism discipline
//!
//! Everything the deterministic manifest section can see — request,
//! response-class, recommend, cache, and protocol counters — is
//! incremented per *request*, exactly as the blocking server did, so
//! the section stays a pure function of the request mix at any shard
//! count and any keep-alive vs close client mix. Everything that is a
//! function of *scheduling* (connections accepted/shed per shard,
//! keep-alive reuse) lives in [`ShardStats`] and is merged into the
//! manifest's quarantined timing section at shutdown.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::epoll::{Epoll, Event, EPOLLEXCLUSIVE, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::http::{error_body, parse_request, render_response_into, Parse, ProtocolError, Request};
use crate::Shared;

/// Token reserved for the shared listener in every shard's epoll set.
const LISTENER_TOKEN: u64 = 0;
/// Epoll wait bound: the deadline-sweep / stop-flag tick.
const TICK_MS: i32 = 25;
/// Most connections accepted per listener wakeup, so one shard cannot
/// monopolize a connect burst under `EPOLLEXCLUSIVE`.
const ACCEPT_BATCH: usize = 64;
/// Most bytes read from one connection per readiness event; level-
/// triggered epoll re-reports whatever is left, so a firehose client
/// cannot starve its shard-mates.
const READ_BATCH_BYTES: usize = 256 * 1024;
/// Pending-response high-water mark: past this the shard stops parsing
/// further pipelined requests until the socket drains (backpressure).
const HIGH_WATER_BYTES: usize = 256 * 1024;
/// How long a draining connection keeps discarding input before the
/// close goes out anyway.
const DRAIN_WINDOW: Duration = Duration::from_millis(50);

/// Per-shard scheduling statistics. These are *not* observe counters:
/// they depend on connection placement and client mode, so they are
/// quarantined in the manifest timing section (see module docs).
pub(crate) struct ShardStats {
    /// Connections accepted by this shard (including shed ones).
    pub(crate) accepted: AtomicU64,
    /// Connections answered `503` at admission (over the shard cap).
    pub(crate) shed: AtomicU64,
    /// Requests served on an already-used connection (keep-alive reuse).
    pub(crate) reused: AtomicU64,
}

impl ShardStats {
    pub(crate) fn new() -> ShardStats {
        ShardStats {
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }
}

/// What [`Conn::settle`] decided the connection needs next.
enum Settled {
    /// Stay registered with this interest set.
    Keep(u32),
    /// Remove and close; `disconnect` says whether the close counts as
    /// a mid-request client disconnect (`serve.disconnects`).
    Close { disconnect: bool },
}

struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes (completed requests are drained off the
    /// front as they dispatch; at most one partial request remains).
    inbuf: Vec<u8>,
    /// Rendered-but-unflushed response bytes.
    outbuf: Vec<u8>,
    /// Flushed prefix of `outbuf`.
    written: usize,
    /// Requests answered on this connection.
    served: u64,
    /// Whether this connection holds an admission slot (shed ones don't).
    admitted: bool,
    /// No further requests will be parsed; close once `outbuf` flushes.
    close_after_write: bool,
    /// The peer sent EOF (or the read side errored): no more input.
    peer_half_closed: bool,
    /// The write side failed; the response cannot be delivered.
    dead_write: bool,
    /// The request may not have been fully read (early rejection), so
    /// closing needs the drain window to avoid an RST.
    suspect_unread: bool,
    /// Set once the connection is discarding input pre-close.
    draining: bool,
    drain_deadline: Option<Instant>,
    last_activity: Instant,
    /// Interest set currently registered with epoll.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream, admitted: bool, now: Instant) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            written: 0,
            served: 0,
            admitted,
            close_after_write: false,
            peer_half_closed: false,
            dead_write: false,
            suspect_unread: false,
            draining: false,
            drain_deadline: None,
            last_activity: now,
            interest: 0,
        }
    }

    fn pending_out(&self) -> bool {
        self.written < self.outbuf.len()
    }

    /// Pull whatever the socket has (bounded per event) into `inbuf`,
    /// or discard it when draining. Flags EOF and read errors.
    fn fill(&mut self, now: Instant) {
        let mut scratch = [0u8; 16 * 1024];
        let mut taken = 0;
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.peer_half_closed = true;
                    break;
                }
                Ok(n) => {
                    self.last_activity = now;
                    if !self.draining && !self.close_after_write {
                        self.inbuf.extend_from_slice(&scratch[..n]);
                    }
                    taken += n;
                    if taken >= READ_BATCH_BYTES {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Reset or transport error: no more input will come.
                    self.peer_half_closed = true;
                    break;
                }
            }
        }
    }

    /// Parse-and-dispatch every complete request currently buffered,
    /// then flush; repeat while backpressure keeps releasing.
    fn pump(&mut self, shared: &Shared, stats: &ShardStats) {
        loop {
            let consumed = self.process(shared, stats);
            self.flush();
            if consumed == 0 || self.dead_write {
                break;
            }
        }
    }

    /// One parsing pass; returns how many requests were dispatched.
    fn process(&mut self, shared: &Shared, stats: &ShardStats) -> usize {
        let mut dispatched = 0;
        while !self.close_after_write && !self.draining {
            if self.outbuf.len() - self.written > HIGH_WATER_BYTES {
                break; // backpressure: let the socket drain first
            }
            match parse_request(&self.inbuf, &shared.limits) {
                Ok(Parse::Partial) => break,
                Ok(Parse::Done(request, used)) => {
                    self.inbuf.drain(..used);
                    self.dispatch(shared, stats, &request);
                    dispatched += 1;
                }
                Err(err) => {
                    // Framing is broken (or the declared body is
                    // rejected): answer and close. Whatever the client
                    // pipelined after the poison request is discarded.
                    self.respond_protocol_error(&err);
                    self.close_after_write = true;
                    self.suspect_unread = true;
                }
            }
        }
        dispatched
    }

    /// Route one parsed request and append its response.
    fn dispatch(&mut self, shared: &Shared, stats: &ShardStats, request: &Request) {
        if shared.config.handler_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.config.handler_delay_ms));
        }
        let _span = spmv_observe::span("serve/request");
        spmv_observe::counter("serve.requests", 1);
        let (status, reason, content_type, extra, body) = crate::route(shared, request);
        crate::count_status(status);
        self.served += 1;
        if self.served > 1 {
            stats.reused.fetch_add(1, Ordering::Relaxed);
        }
        let keep = request.wants_keep_alive()
            && self.served < shared.config.keep_alive_max_requests as u64
            && !shared.stop.load(Ordering::SeqCst);
        render_response_into(
            &mut self.outbuf,
            status,
            reason,
            content_type,
            extra,
            &body,
            keep,
        );
        if !keep {
            self.close_after_write = true;
        }
        self.last_activity = Instant::now();
    }

    /// Append the typed 4xx/5xx for a protocol error, with the same
    /// counter discipline the blocking server used.
    fn respond_protocol_error(&mut self, err: &ProtocolError) {
        if let Some((status, reason, kind)) = err.status() {
            spmv_observe::counter("serve.requests", 1);
            crate::count_protocol_error(err);
            crate::count_status(status);
            let body = error_body(kind, &err.to_string());
            render_response_into(
                &mut self.outbuf,
                status,
                reason,
                "application/json",
                &[],
                &body,
                false,
            );
        }
    }

    /// Nonblocking flush of the pending response bytes.
    fn flush(&mut self) {
        while self.written < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.written..]) {
                Ok(0) => {
                    self.dead_write = true;
                    break;
                }
                Ok(n) => {
                    self.written += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.dead_write = true;
                    break;
                }
            }
        }
        if self.written > 0 && self.written == self.outbuf.len() {
            self.outbuf.clear();
            self.written = 0;
        }
    }

    /// Decide what happens to this connection now: which interest to
    /// keep, or whether (and how) to close.
    fn settle(&mut self, now: Instant) -> Settled {
        if self.dead_write {
            // The response cannot be delivered; counters for the request
            // were already recorded. Same silence as the blocking
            // server's ignored write errors.
            return Settled::Close { disconnect: false };
        }
        if self.draining {
            let expired = self.drain_deadline.is_some_and(|d| now >= d);
            return if self.peer_half_closed || expired {
                Settled::Close { disconnect: false }
            } else {
                Settled::Keep(EPOLLIN | EPOLLRDHUP)
            };
        }
        let pending = self.pending_out();
        if self.close_after_write {
            if pending {
                // Stop reading; just get the final response out.
                return Settled::Keep(EPOLLOUT);
            }
            if self.peer_half_closed {
                // EOF already seen: everything the client sent has been
                // read out of the kernel, so the close is a clean FIN.
                return Settled::Close { disconnect: false };
            }
            if self.suspect_unread || !self.inbuf.is_empty() {
                self.draining = true;
                self.inbuf.clear();
                self.drain_deadline = Some(now + DRAIN_WINDOW);
                return Settled::Keep(EPOLLIN | EPOLLRDHUP);
            }
            // `Connection: close` served, input fully consumed: the
            // one-shot fast path closes immediately.
            return Settled::Close { disconnect: false };
        }
        if self.peer_half_closed {
            if pending {
                return Settled::Keep(EPOLLOUT);
            }
            // No more input can ever arrive; leftover buffered bytes are
            // a dead partial request — the mid-request disconnect the
            // counters track. A fully-consumed buffer is a clean close
            // (empty probe or finished keep-alive session).
            return Settled::Close {
                disconnect: !self.inbuf.is_empty(),
            };
        }
        let mut interest = EPOLLRDHUP;
        if self.outbuf.len() - self.written > HIGH_WATER_BYTES {
            interest |= EPOLLOUT; // paused: resume parsing after drain
        } else {
            interest |= EPOLLIN;
            if pending {
                interest |= EPOLLOUT;
            }
        }
        Settled::Keep(interest)
    }

    /// Whether this is an idle keep-alive session (safe to close
    /// silently at shutdown or idle timeout).
    fn is_idle_keepalive(&self) -> bool {
        !self.draining
            && !self.close_after_write
            && self.served > 0
            && self.inbuf.is_empty()
            && !self.pending_out()
    }
}

/// One shard: the epoll set, the connections it owns, and its slice of
/// the admission budget.
struct Shard {
    shared: Arc<Shared>,
    listener: Arc<TcpListener>,
    stats: Arc<ShardStats>,
    ep: Epoll,
    conns: HashMap<u64, Conn>,
    /// Connections currently holding an admission slot.
    admitted: usize,
    /// Admission cap: `queue_depth` waiting + 1 in flight, per shard —
    /// the same budget the bounded channel gave the blocking server.
    cap: usize,
    next_token: u64,
    listener_armed: bool,
}

/// Run one shard's event loop until shutdown completes. Spawned once
/// per worker shard by `Server::spawn`.
pub(crate) fn shard_loop(shared: Arc<Shared>, listener: Arc<TcpListener>, stats: Arc<ShardStats>) {
    let ep = match Epoll::new() {
        Ok(ep) => ep,
        Err(_) => return, // no epoll, no shard; spawn-time smoke tests catch this
    };
    if ep
        .add(&*listener, EPOLLIN | EPOLLEXCLUSIVE, LISTENER_TOKEN)
        .is_err()
    {
        return;
    }
    let cap = shared.config.queue_depth.max(1) + 1;
    let mut shard = Shard {
        shared,
        listener,
        stats,
        ep,
        conns: HashMap::new(),
        admitted: 0,
        cap,
        next_token: 1,
        listener_armed: true,
    };
    let mut events = [Event { events: 0, data: 0 }; 128];
    loop {
        let stopping = shard.shared.stop.load(Ordering::SeqCst);
        if stopping {
            shard.enter_shutdown();
            if shard.conns.is_empty() {
                break;
            }
        }
        let now = Instant::now();
        match shard.ep.wait(&mut events, TICK_MS) {
            Ok(batch) => {
                // `batch` borrows `events`, not `shard`.
                for ev in batch {
                    shard.on_event(ev.token(), stopping, now);
                }
            }
            Err(_) => continue,
        }
        shard.sweep(Instant::now(), stopping);
    }
}

impl Shard {
    /// Stop accepting and shut idle sessions; in-flight work continues
    /// (bounded by its deadlines) so admitted requests still complete.
    fn enter_shutdown(&mut self) {
        if self.listener_armed {
            self.ep.remove(&*self.listener);
            self.listener_armed = false;
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.is_idle_keepalive())
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.close(token, false);
        }
    }

    fn on_event(&mut self, token: u64, stopping: bool, now: Instant) {
        if token == LISTENER_TOKEN {
            if !stopping && self.listener_armed {
                self.accept_burst(now);
            }
            return;
        }
        let Self {
            conns,
            shared,
            stats,
            ..
        } = self;
        let settled = match conns.get_mut(&token) {
            Some(conn) => {
                conn.fill(now);
                conn.pump(shared, stats);
                conn.settle(now)
            }
            None => return, // closed earlier in this batch
        };
        self.apply(token, settled);
    }

    /// Apply a settle decision: re-arm interest or close.
    fn apply(&mut self, token: u64, settled: Settled) {
        match settled {
            Settled::Keep(interest) => {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if interest != conn.interest {
                    if self.ep.modify(&conn.stream, interest, token).is_ok() {
                        conn.interest = interest;
                    } else {
                        self.close(token, false);
                    }
                }
            }
            Settled::Close { disconnect } => self.close(token, disconnect),
        }
    }

    fn close(&mut self, token: u64, disconnect: bool) {
        if let Some(conn) = self.conns.remove(&token) {
            if disconnect {
                spmv_observe::counter("serve.disconnects", 1);
            }
            self.ep.remove(&conn.stream);
            if conn.admitted {
                self.admitted -= 1;
            }
        }
    }

    fn accept_burst(&mut self, now: Instant) {
        for _ in 0..ACCEPT_BATCH {
            let stream = match self.listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => continue, // aborted handshake etc.; keep accepting
            };
            self.stats.accepted.fetch_add(1, Ordering::Relaxed);
            let _nb = stream.set_nonblocking(true);
            let _nd = stream.set_nodelay(true);
            let admitted = self.admitted < self.cap;
            let mut conn = Conn::new(stream, admitted, now);
            if admitted {
                self.admitted += 1;
            } else {
                self.shed_overload(&mut conn);
            }
            let token = self.next_token;
            self.next_token += 1;
            match conn.settle(now) {
                Settled::Keep(interest) => {
                    if self.ep.add(&conn.stream, interest, token).is_ok() {
                        conn.interest = interest;
                        self.conns.insert(token, conn);
                    } else if conn.admitted {
                        self.admitted -= 1;
                    }
                }
                Settled::Close { .. } => {
                    if conn.admitted {
                        self.admitted -= 1;
                    }
                }
            }
        }
    }

    /// Over the admission cap: answer `503 Retry-After: 1` immediately
    /// (the shed path must never wait behind queued work) and drain.
    fn shed_overload(&mut self, conn: &mut Conn) {
        self.stats.shed.fetch_add(1, Ordering::Relaxed);
        spmv_observe::counter("serve.rejected.overload", 1);
        let body = error_body("overloaded", "request queue is full; retry shortly");
        render_response_into(
            &mut conn.outbuf,
            503,
            "Service Unavailable",
            "application/json",
            &[("Retry-After", "1")],
            &body,
            false,
        );
        conn.close_after_write = true;
        conn.suspect_unread = true;
        conn.flush();
    }

    /// Deadline pass, run every tick: 408 stalled requests, silently
    /// close idle keep-alive sessions and expired drains.
    fn sweep(&mut self, now: Instant, stopping: bool) {
        let read_timeout = Duration::from_millis(self.shared.config.read_timeout_ms.max(1));
        let idle_timeout = Duration::from_millis(self.shared.config.idle_timeout_ms.max(1));
        let mut to_close: Vec<u64> = Vec::new();
        let mut to_timeout: Vec<u64> = Vec::new();
        for (&token, conn) in &self.conns {
            if conn.draining {
                if conn.peer_half_closed || conn.drain_deadline.is_some_and(|d| now >= d) {
                    to_close.push(token);
                }
                continue;
            }
            let idle = conn.is_idle_keepalive();
            if idle && stopping {
                to_close.push(token);
                continue;
            }
            let limit = if idle { idle_timeout } else { read_timeout };
            if now.duration_since(conn.last_activity) < limit {
                continue;
            }
            if idle || conn.pending_out() || conn.close_after_write {
                // Idle session, stalled writer, or a close already in
                // motion: nothing useful to say, just hang up.
                to_close.push(token);
            } else {
                to_timeout.push(token);
            }
        }
        for token in to_close {
            self.close(token, false);
        }
        for token in to_timeout {
            let settled = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                conn.respond_protocol_error(&ProtocolError::Timeout);
                conn.close_after_write = true;
                conn.suspect_unread = true;
                conn.flush();
                conn.settle(now)
            };
            self.apply(token, settled);
        }
    }
}
