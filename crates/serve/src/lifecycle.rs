//! Scripted online-learning lifecycle scenarios for `spmv-serve-load`.
//!
//! A lifecycle run is a **serial** request script (one-shot connections,
//! one request at a time) that drives the feedback → retrain → shadow
//! canary → hot-swap loop end to end against a live server and asserts
//! the observable state transitions along the way: `/healthz` must
//! disclose the expected generation number and canary phase, `/statz`
//! must carry the expected lifecycle counters. Serial on purpose — the
//! assertions are about a state machine, so the script must be the only
//! traffic.
//!
//! The server under test must be booted with `--cache-capacity 0` and
//! the matching `--online-*` flags (the [`RETRAIN_AFTER`] …
//! [`WATCHDOG_ERRORS`] constants below): with the cache off, every
//! recommend is a miss and therefore shadow-scored while a candidate is
//! in flight — a cache hit would bypass the canary and the window would
//! never close.
//!
//! The three scenarios mirror the three exits of the canary state
//! machine:
//!
//! - [`LifecycleKind::Promote`] — probes teach the reservoir that the
//!   active model's recommendations are the observed-best formats, so
//!   the retrained candidate mimics the active model and passes the
//!   agreement gate; the script ends on generation 1 under watchdog
//!   observation.
//! - [`LifecycleKind::Rollback`] — promote, then report
//!   [`WATCHDOG_ERRORS`] failed outcomes against the new generation; the
//!   watchdog must revert to generation 0 within the window.
//! - [`LifecycleKind::Corrupt`] — the server runs with
//!   `--online-corrupt-candidate`, so the candidate's envelope bytes are
//!   corrupted before validation; the envelope gate must reject it and
//!   the server must still be on generation 0, phase idle.
//!
//! `POST /admin/canary/sync` (admin-gated, like shutdown) makes
//! "retrainer finished" an explicit point in the request sequence, so
//! the script never races the background thread.

use crate::loadgen::{feature_body, feedback_body, feedback_failed_body, http_roundtrip};

/// Measured feedback events that schedule a retrain in lifecycle runs.
pub const RETRAIN_AFTER: usize = 12;
/// Shadow comparisons scored before the canary verdict.
pub const CANARY_WINDOW: u64 = 8;
/// Minimum candidate/active agreement (percent) for promotion.
pub const CANARY_AGREE_PCT: u64 = 75;
/// Post-promotion observation window, in attributed feedback events.
pub const WATCHDOG_WINDOW: u64 = 6;
/// Errors within the watchdog window that trigger auto-rollback.
pub const WATCHDOG_ERRORS: u64 = 3;

/// One step of a lifecycle script.
#[derive(Debug, Clone)]
pub enum LifecycleOp {
    /// `GET /healthz`: assert the active generation number and canary
    /// phase. Also updates the runner's generation tracker, which later
    /// feedback ops attribute their events to.
    Healthz {
        /// The generation `/healthz` must report.
        expect_generation: u64,
        /// The canary phase (`"idle"`, `"shadow"`, `"watch"`) it must report.
        expect_canary: &'static str,
    },
    /// `POST /v1/recommend` with `feature_body(seed)`, then echo the
    /// recommended format back as measured feedback — the client "ran"
    /// the recommendation and it was the best choice, which is what
    /// teaches the candidate to mimic the active model.
    Probe {
        /// Feature-body seed.
        seed: u64,
        /// The runtime the echo reports.
        seconds: f64,
    },
    /// `POST /v1/recommend` with `feature_body(seed)` only — live
    /// traffic for the shadow canary to score.
    Score {
        /// Feature-body seed.
        seed: u64,
    },
    /// `POST /v1/feedback` reporting a failed outcome attributed to the
    /// tracked generation (watchdog food).
    FeedbackFailed {
        /// Feature-body seed.
        seed: u64,
    },
    /// `POST /admin/canary/sync`: block until the retrainer is
    /// quiescent (no retrain pending or running).
    Sync,
    /// `GET /statz`: assert the body contains `expect`.
    Statz {
        /// Substring the status body must contain.
        expect: String,
    },
}

/// Which canary exit a script drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleKind {
    /// Candidate agrees and is swapped in (ends on generation 1, watch).
    Promote,
    /// Promote, then watchdog-trip back to generation 0.
    Rollback,
    /// Corruption hook: candidate rejected by envelope validation.
    Corrupt,
}

impl LifecycleKind {
    /// Parse a `--lifecycle` argument.
    pub fn parse(s: &str) -> Option<LifecycleKind> {
        match s {
            "promote" => Some(LifecycleKind::Promote),
            "rollback" => Some(LifecycleKind::Rollback),
            "corrupt" => Some(LifecycleKind::Corrupt),
            _ => None,
        }
    }
}

/// Build the scripted scenario. Pure in `(kind, seed)` — replaying the
/// same script against a server booted with the same `--online-seed`
/// reproduces the candidate artifact byte-for-byte.
pub fn lifecycle_script(kind: LifecycleKind, seed: u64) -> Vec<LifecycleOp> {
    let mut ops = vec![LifecycleOp::Healthz {
        expect_generation: 0,
        expect_canary: "idle",
    }];
    // Feed the reservoir: RETRAIN_AFTER distinct probes, echoing the
    // active model's recommendation as the observed-best format. The
    // 12th measured event schedules the retrain.
    for i in 0..RETRAIN_AFTER {
        ops.push(LifecycleOp::Probe {
            seed: seed.wrapping_add(i as u64),
            seconds: 1e-5 * (i + 1) as f64,
        });
    }
    ops.push(LifecycleOp::Sync);
    if kind == LifecycleKind::Corrupt {
        // The corrupted candidate must have been rejected by envelope
        // validation before it ever became a generation.
        ops.push(LifecycleOp::Healthz {
            expect_generation: 0,
            expect_canary: "idle",
        });
        ops.push(LifecycleOp::Statz {
            expect: "\"online.artifact.rejected\":1".to_string(),
        });
        return ops;
    }
    // A healthy candidate is now shadow-scoring. Score it on the same
    // seeds it trained on: the candidate memorized those points, so it
    // agrees with the active model and the gate passes deterministically.
    ops.push(LifecycleOp::Healthz {
        expect_generation: 0,
        expect_canary: "shadow",
    });
    for i in 0..CANARY_WINDOW {
        ops.push(LifecycleOp::Score {
            seed: seed.wrapping_add(i),
        });
    }
    ops.push(LifecycleOp::Healthz {
        expect_generation: 1,
        expect_canary: "watch",
    });
    ops.push(LifecycleOp::Statz {
        expect: "\"online.swap.promotions\":1".to_string(),
    });
    if kind == LifecycleKind::Rollback {
        // Report failures against the promoted generation until the
        // watchdog trips; the previous generation must come back.
        for i in 0..WATCHDOG_ERRORS {
            ops.push(LifecycleOp::FeedbackFailed {
                seed: seed.wrapping_add(1000 + i),
            });
        }
        ops.push(LifecycleOp::Healthz {
            expect_generation: 0,
            expect_canary: "idle",
        });
        ops.push(LifecycleOp::Statz {
            expect: "\"online.swap.rollbacks\":1".to_string(),
        });
    }
    ops
}

/// What a lifecycle run observed.
pub struct LifecycleReport {
    /// Steps executed.
    pub steps: usize,
    /// Assertion failures, in script order (`step:what` strings).
    pub violations: Vec<String>,
}

impl LifecycleReport {
    /// One JSON line for scripting, mirroring `LoadReport::to_json`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"steps\":{},", self.steps));
        s.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{v}\""));
        }
        s.push_str("]}");
        s
    }
}

/// Pull `"key":<u64>` out of a JSON body by substring scan (the status
/// bodies are flat, server-generated, and tested — a parser would be
/// ceremony).
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let rest = body.split(&format!("\"{key}\":")).nth(1)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Pull `"key":"value"` out of a JSON body by substring scan.
fn json_str(body: &str, key: &str) -> Option<String> {
    let rest = body.split(&format!("\"{key}\":\"")).nth(1)?;
    Some(rest.chars().take_while(|c| *c != '"').collect())
}

/// Run the script serially against `addr`. Every op records at most a
/// few violations and the run always continues — a broken server yields
/// a full diagnosis, not a truncated one.
pub fn run_lifecycle(addr: &str, script: &[LifecycleOp]) -> LifecycleReport {
    let mut violations = Vec::new();
    // The generation later feedback is attributed to; updated from what
    // /healthz actually reported (not the expectation), so attribution
    // follows reality even while expectations are failing.
    let mut generation = 0u64;
    for (step, op) in script.iter().enumerate() {
        let mut violate = |what: String| violations.push(format!("{step}:{what}"));
        match op {
            LifecycleOp::Healthz {
                expect_generation,
                expect_canary,
            } => {
                let (status, body) =
                    http_roundtrip(addr, "GET", "/healthz", b"").unwrap_or((0, Vec::new()));
                let body = String::from_utf8_lossy(&body).to_string();
                if status != 200 {
                    violate(format!("healthz-status-{status}"));
                    continue;
                }
                match json_u64(&body, "generation") {
                    Some(actual) => {
                        generation = actual;
                        if actual != *expect_generation {
                            violate(format!(
                                "healthz-generation-{actual}-want-{expect_generation}"
                            ));
                        }
                    }
                    None => violate("healthz-no-generation".to_string()),
                }
                let canary = json_str(&body, "canary").unwrap_or_default();
                if canary != *expect_canary {
                    violate(format!("healthz-canary-{canary}-want-{expect_canary}"));
                }
            }
            LifecycleOp::Probe { seed, seconds } => {
                let (status, body) =
                    http_roundtrip(addr, "POST", "/v1/recommend", &feature_body(*seed))
                        .unwrap_or((0, Vec::new()));
                if status != 200 {
                    violate(format!("probe-recommend-status-{status}"));
                    continue;
                }
                let body = String::from_utf8_lossy(&body).to_string();
                let Some(format) = json_str(&body, "format") else {
                    violate("probe-no-format".to_string());
                    continue;
                };
                let echo = feedback_body(*seed, &format, generation, *seconds);
                let (status, _b) =
                    http_roundtrip(addr, "POST", "/v1/feedback", &echo).unwrap_or((0, Vec::new()));
                if status != 200 {
                    violate(format!("probe-feedback-status-{status}"));
                }
            }
            LifecycleOp::Score { seed } => {
                let (status, _b) =
                    http_roundtrip(addr, "POST", "/v1/recommend", &feature_body(*seed))
                        .unwrap_or((0, Vec::new()));
                if status != 200 {
                    violate(format!("score-status-{status}"));
                }
            }
            LifecycleOp::FeedbackFailed { seed } => {
                let body = feedback_failed_body(*seed, "CSR", generation);
                let (status, _b) =
                    http_roundtrip(addr, "POST", "/v1/feedback", &body).unwrap_or((0, Vec::new()));
                if status != 200 {
                    violate(format!("failed-feedback-status-{status}"));
                }
            }
            LifecycleOp::Sync => {
                let (status, _b) = http_roundtrip(addr, "POST", "/admin/canary/sync", b"")
                    .unwrap_or((0, Vec::new()));
                if status != 200 {
                    violate(format!("sync-status-{status}"));
                }
            }
            LifecycleOp::Statz { expect } => {
                let (status, body) =
                    http_roundtrip(addr, "GET", "/statz", b"").unwrap_or((0, Vec::new()));
                let body = String::from_utf8_lossy(&body).to_string();
                if status != 200 {
                    violate(format!("statz-status-{status}"));
                } else if !body.contains(expect.as_str()) {
                    violate(format!("statz-missing-{expect}"));
                }
            }
        }
    }
    LifecycleReport {
        steps: script.len(),
        violations,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_pure_and_shaped_by_kind() {
        let a = format!("{:?}", lifecycle_script(LifecycleKind::Promote, 11));
        let b = format!("{:?}", lifecycle_script(LifecycleKind::Promote, 11));
        assert_eq!(a, b);
        let promote = lifecycle_script(LifecycleKind::Promote, 11);
        let rollback = lifecycle_script(LifecycleKind::Rollback, 11);
        let corrupt = lifecycle_script(LifecycleKind::Corrupt, 11);
        assert!(rollback.len() > promote.len());
        assert!(corrupt.len() < promote.len());
        let probes = |ops: &[LifecycleOp]| {
            ops.iter()
                .filter(|op| matches!(op, LifecycleOp::Probe { .. }))
                .count()
        };
        assert_eq!(probes(&promote), RETRAIN_AFTER);
        assert_eq!(probes(&corrupt), RETRAIN_AFTER);
        let scores = promote
            .iter()
            .filter(|op| matches!(op, LifecycleOp::Score { .. }))
            .count();
        assert_eq!(scores as u64, CANARY_WINDOW);
        let fails = rollback
            .iter()
            .filter(|op| matches!(op, LifecycleOp::FeedbackFailed { .. }))
            .count();
        assert_eq!(fails as u64, WATCHDOG_ERRORS);
    }

    #[test]
    fn json_scrapers_read_the_status_shape() {
        let body = "{\"status\":\"ok\",\"mode\":\"model\",\"model_version\":3,\
                    \"generation\":2,\"checksum\":\"abc\",\"canary\":\"watch\"}";
        assert_eq!(json_u64(body, "generation"), Some(2));
        assert_eq!(json_str(body, "canary").as_deref(), Some("watch"));
        assert_eq!(json_str(body, "checksum").as_deref(), Some("abc"));
        assert_eq!(json_u64(body, "missing"), None);
    }

    #[test]
    fn report_renders_violations() {
        let report = LifecycleReport {
            steps: 3,
            violations: vec!["1:healthz-status-0".to_string()],
        };
        let json = report.to_json();
        assert!(json.contains("\"steps\":3"), "{json}");
        assert!(json.contains("healthz-status-0"), "{json}");
    }
}
