//! Deterministic closed-loop load generation for `spmv-serve`.
//!
//! The request mix is a pure function of `(total, seed)`: the same inputs
//! always produce the same bodies in the same order, which is what lets
//! CI assert that the server's deterministic manifest section is
//! byte-identical across worker counts — the *work* is fixed, only the
//! scheduling varies. Bodies are synthesized with a local LCG (no
//! dependency on the workspace RNG stack) because the generator must stay
//! self-contained enough to run from the bench harness and the smoke job
//! alike. Besides recommend traffic the mix carries `POST /v1/feedback`
//! reports — measured ones that must be accepted and malformed ones that
//! must be rejected with a 4xx — so the online-learning ingestion path is
//! exercised (and its counters pinned) by every scripted run; the
//! end-to-end retrain→canary→swap scenarios live in [`crate::lifecycle`].
//!
//! Two closed-loop runners share the scripted mix:
//!
//! - [`run`] — **one-shot**: every request rides its own connection with
//!   `Connection: close`, exactly what the CLI and old clients do. Kept
//!   as the regression path.
//! - [`run_persistent`] — **keep-alive + pipelining**: each client
//!   thread holds one persistent connection, claims `pipeline_depth`
//!   consecutive mix indices at a time, writes them as one burst, and
//!   reads the responses back in order. When the server closes (its
//!   per-connection request budget, or an error), the unanswered tail
//!   of the chunk is re-sent on a fresh connection, so per-request
//!   status-class expectations hold in both modes.
//!
//! Closed-loop load is the right shape for a saturation test — offered
//! load adapts to service rate instead of stacking an unbounded
//! backlog.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Splitmix64 step — the mix generator's only source of "randomness".
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
}

fn mix(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny deterministic RNG for body synthesis.
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Seeded generator; same seed, same stream.
    pub fn new(seed: u64) -> Lcg {
        Lcg {
            state: seed ^ 0xdead_beef_cafe_f00d,
        }
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state);
        mix(self.state)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// How the generator expects the server to classify a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectClass {
    /// Well-formed: the server must answer 200.
    Ok,
    /// Malformed on purpose: the server must answer a 4xx (never 5xx,
    /// never drop the connection without a response).
    ClientError,
}

/// One scripted request.
pub struct LoadRequest {
    /// Stable label for diagnostics (`"banded-17"`, `"bad-features-3"`, …).
    pub name: String,
    /// HTTP method.
    pub method: &'static str,
    /// Request target.
    pub target: &'static str,
    /// Request body (empty for GETs).
    pub body: Vec<u8>,
    /// The status class this request must produce.
    pub expect: ExpectClass,
}

/// A well-formed banded MatrixMarket body (`n` rows, bandwidth `bw`).
pub fn banded_mm(n: usize, bw: usize) -> Vec<u8> {
    let mut entries = Vec::new();
    for r in 0..n {
        for c in r.saturating_sub(bw)..(r + bw + 1).min(n) {
            entries.push((r + 1, c + 1, 1.0 + (r % 7) as f64));
        }
    }
    render_mm(n, n, &entries)
}

/// A well-formed sparse body with LCG-placed entries (distinct columns
/// per row; the strict parser rejects duplicate coordinates).
pub fn scattered_mm(n: usize, per_row: usize, rng: &mut Lcg) -> Vec<u8> {
    let mut entries = Vec::new();
    for r in 0..n {
        let mut cols: Vec<usize> = (0..per_row.max(1) * 3)
            .map(|_| rng.below(n as u64) as usize)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols.truncate(per_row.max(1));
        for c in cols {
            entries.push((r + 1, c + 1, 0.5 + (rng.below(16) as f64) / 8.0));
        }
    }
    render_mm(n, n, &entries)
}

/// A body with one pathologically heavy row (the HYB/merge regime).
pub fn skewed_mm(n: usize) -> Vec<u8> {
    let mut entries = Vec::new();
    for c in 0..n {
        entries.push((1, c + 1, 2.0));
    }
    for r in 1..n {
        entries.push((r + 1, r + 1, 1.0));
    }
    render_mm(n, n, &entries)
}

fn render_mm(rows: usize, cols: usize, entries: &[(usize, usize, f64)]) -> Vec<u8> {
    let mut s = String::with_capacity(32 + entries.len() * 12);
    s.push_str("%%MatrixMarket matrix coordinate real general\n");
    s.push_str(&format!("{rows} {cols} {}\n", entries.len()));
    for (r, c, v) in entries {
        s.push_str(&format!("{r} {c} {v}\n"));
    }
    s.into_bytes()
}

/// `Format::label()` strings, for synthesizing feedback bodies without
/// dragging the matrix crate into the generator's non-test surface.
pub const FORMAT_LABELS: [&str; 6] = ["COO", "ELL", "CSR", "HYB", "merge-CSR", "CSR5"];

/// A feature-vector request body: 17 finite values derived from `seed`.
pub fn feature_body(seed: u64) -> Vec<u8> {
    let mut rng = Lcg::new(seed);
    let n_rows = 256.0 + rng.below(4096) as f64;
    let mu = 1.0 + rng.below(32) as f64;
    let mut values = [0.0_f64; 17];
    values[0] = n_rows; // n_rows
    values[1] = n_rows; // n_cols
    values[2] = n_rows * mu; // nnz_tot
    values[3] = mu; // nnz_mu
    values[4] = mu / n_rows; // nnz_frac
    values[5] = mu * (1.0 + rng.below(4) as f64); // nnz_max
    values[6] = mu / (2.0 + rng.below(3) as f64); // nnz_sigma
    for v in values.iter_mut().skip(7) {
        *v = rng.below(64) as f64;
    }
    let mut s = String::from("{\"features\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{v}"));
    }
    s.push_str("]}");
    s.into_bytes()
}

/// A measured-feedback body echoing `feature_body(seed)`'s features: the
/// client reports it ran `format` on that matrix for `seconds`, on a
/// recommendation from `generation`.
pub fn feedback_body(seed: u64, format: &str, generation: u64, seconds: f64) -> Vec<u8> {
    let mut body = feature_body(seed);
    body.pop(); // trailing '}'
    body.extend_from_slice(
        format!(",\"format\":\"{format}\",\"generation\":{generation},\"seconds\":{seconds}")
            .as_bytes(),
    );
    body.push(b'}');
    body
}

/// A failed-outcome feedback body: `format` failed outright on the
/// client for the matrix behind `feature_body(seed)`.
pub fn feedback_failed_body(seed: u64, format: &str, generation: u64) -> Vec<u8> {
    let mut body = feature_body(seed);
    body.pop(); // trailing '}'
    body.extend_from_slice(
        format!(",\"format\":\"{format}\",\"generation\":{generation},\"status\":\"failed\"")
            .as_bytes(),
    );
    body.push(b'}');
    body
}

/// Build the scripted mix: well-formed matrices (banded, scattered,
/// skewed), feature vectors, exact repeats (cache food), measured and
/// malformed feedback reports, and malformed recommend payloads,
/// interleaved on a fixed cycle. Pure in `(total, seed)`.
pub fn build_mix(total: usize, seed: u64) -> Vec<LoadRequest> {
    let mut rng = Lcg::new(seed);
    let mut out: Vec<LoadRequest> = Vec::with_capacity(total);
    for i in 0..total {
        let req = match i % 10 {
            0 => LoadRequest {
                name: format!("banded-{i}"),
                method: "POST",
                target: "/v1/recommend",
                body: banded_mm(48 + (i % 5) * 16, 1 + i % 3),
                expect: ExpectClass::Ok,
            },
            1 => LoadRequest {
                name: format!("features-{i}"),
                method: "POST",
                target: "/v1/recommend",
                body: feature_body(seed.wrapping_add(i as u64)),
                expect: ExpectClass::Ok,
            },
            2 => LoadRequest {
                name: format!("scattered-{i}"),
                method: "POST",
                target: "/v1/recommend",
                body: scattered_mm(40 + i % 7, 3, &mut rng),
                expect: ExpectClass::Ok,
            },
            3 => {
                // Exact repeat of an earlier well-formed request: cache food.
                // Indices 0/1/2 mod 10 are always well-formed, so aim there.
                let back = (i / 2) - (i / 2) % 10 + (i % 3);
                let donor = &out[back];
                LoadRequest {
                    name: format!("repeat-{i}-of-{back}"),
                    method: donor.method,
                    target: donor.target,
                    body: donor.body.clone(),
                    expect: donor.expect,
                }
            }
            4 => LoadRequest {
                name: format!("bad-matrix-{i}"),
                method: "POST",
                target: "/v1/recommend",
                body: match i % 3 {
                    0 => {
                        b"%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n".to_vec()
                    }
                    1 => b"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n".to_vec(),
                    _ => {
                        b"%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1.0\n".to_vec()
                    }
                },
                expect: ExpectClass::ClientError,
            },
            5 => LoadRequest {
                name: format!("bad-features-{i}"),
                method: "POST",
                target: "/v1/recommend",
                body: match i % 3 {
                    0 => b"{\"features\":[1,2,3]}".to_vec(),
                    1 => b"{\"features\":\"oops\"}".to_vec(),
                    _ => b"{\"other\":true}".to_vec(),
                },
                expect: ExpectClass::ClientError,
            },
            6 => LoadRequest {
                name: format!("healthz-{i}"),
                method: "GET",
                target: "/healthz",
                body: Vec::new(),
                expect: ExpectClass::Ok,
            },
            7 => LoadRequest {
                name: format!("skewed-{i}"),
                method: "POST",
                target: "/v1/recommend",
                body: skewed_mm(64 + (i % 4) * 8),
                expect: ExpectClass::Ok,
            },
            8 => {
                // Measured feedback against the boot generation (0), which
                // every server has. Distinct seeds keep the bodies distinct,
                // so the reservoir counters stay a pure function of the mix.
                let label = FORMAT_LABELS[rng.below(FORMAT_LABELS.len() as u64) as usize];
                let seconds = (1 + rng.below(1000)) as f64 * 1e-7;
                LoadRequest {
                    name: format!("feedback-{i}"),
                    method: "POST",
                    target: "/v1/feedback",
                    body: feedback_body(seed.wrapping_add(i as u64), label, 0, seconds),
                    expect: ExpectClass::Ok,
                }
            }
            _ => LoadRequest {
                name: format!("bad-feedback-{i}"),
                method: "POST",
                target: "/v1/feedback",
                body: match i % 3 {
                    // Wrong arity, unknown format, unknown generation.
                    0 => b"{\"features\":[1,2],\"format\":\"CSR\",\"seconds\":0.001}".to_vec(),
                    1 => feedback_body(seed.wrapping_add(i as u64), "NOPE", 0, 1e-6),
                    _ => feedback_body(seed.wrapping_add(i as u64), "CSR", 9999, 1e-6),
                },
                expect: ExpectClass::ClientError,
            },
        };
        out.push(req);
    }
    out
}

/// What one request produced.
pub struct Outcome {
    /// Index into the scripted mix.
    pub index: usize,
    /// HTTP status (0 when the connection failed outright).
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Round-trip latency.
    pub latency: Duration,
}

/// Aggregated run results.
pub struct LoadReport {
    /// Per-request outcomes, sorted by mix index.
    pub outcomes: Vec<Outcome>,
    /// Requests per status code.
    pub statuses: BTreeMap<u16, usize>,
    /// Mix entries whose status class contradicted their expectation
    /// (names), excluding 503s when `allow_503` was set.
    pub violations: Vec<String>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Sorted latencies in nanoseconds.
    fn sorted_latencies_ns(&self) -> Vec<u128> {
        let mut v: Vec<u128> = self.outcomes.iter().map(|o| o.latency.as_nanos()).collect();
        v.sort_unstable();
        v
    }

    fn quantile_ns(sorted: &[u128], q: f64) -> u128 {
        if sorted.is_empty() {
            return 0;
        }
        let pos = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[pos.min(sorted.len() - 1)]
    }

    /// Render the report as one JSON object (statuses, violation names,
    /// throughput, latency quantiles, and a log2 latency histogram).
    pub fn to_json(&self) -> String {
        let sorted = self.sorted_latencies_ns();
        let secs = self.elapsed.as_secs_f64();
        let throughput = if secs > 0.0 {
            self.outcomes.len() as f64 / secs
        } else {
            0.0
        };
        // log2 histogram over microseconds: bucket k counts latencies in
        // [2^k, 2^(k+1)) us.
        let mut histogram: BTreeMap<u32, usize> = BTreeMap::new();
        for ns in &sorted {
            let us = (ns / 1_000).max(1);
            let bucket = 127 - u128::leading_zeros(us);
            *histogram.entry(bucket).or_insert(0) += 1;
        }
        let mut s = String::from("{");
        s.push_str(&format!("\"requests\":{},", self.outcomes.len()));
        s.push_str(&format!("\"elapsed_seconds\":{secs},"));
        s.push_str(&format!("\"throughput_rps\":{throughput},"));
        s.push_str("\"statuses\":{");
        for (i, (code, count)) in self.statuses.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{code}\":{count}"));
        }
        s.push_str("},");
        s.push_str(&format!(
            "\"latency_ns\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},",
            Self::quantile_ns(&sorted, 0.50),
            Self::quantile_ns(&sorted, 0.90),
            Self::quantile_ns(&sorted, 0.99),
            sorted.last().copied().unwrap_or(0),
        ));
        s.push_str("\"latency_log2us_histogram\":{");
        for (i, (bucket, count)) in histogram.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{bucket}\":{count}"));
        }
        s.push_str("},");
        s.push_str("\"violations\":[");
        for (i, name) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{name}\""));
        }
        s.push_str("]}");
        s
    }
}

/// One HTTP/1.1 round trip over a fresh connection. The request carries
/// `Connection: close`, so the (keep-alive-capable) server answers and
/// closes — the legacy one-shot contract. Returns `(status, body)`.
pub fn http_roundtrip(
    addr: &str,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut req = format!("{method} {target} HTTP/1.1\r\nHost: {addr}\r\n");
    if !body.is_empty() || method == "POST" {
        req.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    req.push_str("Connection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    stream.write_all(body)?;
    let mut raw = Vec::new();
    // A late RST (server closed with unread data) can error the tail of
    // the read; any complete response already received still counts.
    match stream.read_to_end(&mut raw) {
        Ok(_) => {}
        Err(e) if raw.is_empty() => return Err(e),
        Err(_) => {}
    }
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..header_end]).map_err(|_| bad("non-utf8 head"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty head"))?;
    let code = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("unparsable status line"))?;
    Ok((code, raw[header_end + 4..].to_vec()))
}

/// Block until the server accepts TCP connections (bare connect, no
/// bytes — the server treats empty connections as invisible, so polling
/// never perturbs its counters). Errors after `timeout`.
pub fn wait_ready(addr: &str, timeout: Duration) -> std::io::Result<()> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(_) => return Ok(()),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Ask a `spmv-serve` with the admin endpoint enabled to shut down.
pub fn send_shutdown(addr: &str) -> std::io::Result<u16> {
    http_roundtrip(addr, "POST", "/admin/shutdown", b"").map(|(code, _)| code)
}

/// Drive the scripted `mix` against `addr` with `concurrency` closed-loop
/// client threads. `allow_503` exempts overload rejections from the
/// expectation check (used when probing saturation on purpose).
pub fn run(addr: &str, mix: &[LoadRequest], concurrency: usize, allow_503: bool) -> LoadReport {
    let cursor = Arc::new(AtomicUsize::new(0));
    let collected: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::with_capacity(mix.len())));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            let cursor = Arc::clone(&cursor);
            let collected = Arc::clone(&collected);
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= mix.len() {
                    break;
                }
                let req = &mix[index];
                let sent = Instant::now();
                let (status, body) = http_roundtrip(addr, req.method, req.target, &req.body)
                    .unwrap_or((0, Vec::new()));
                let outcome = Outcome {
                    index,
                    status,
                    body,
                    latency: sent.elapsed(),
                };
                collected
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(outcome);
            });
        }
    });
    let outcomes = match Arc::try_unwrap(collected) {
        Ok(mutex) => mutex
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
        Err(_) => Vec::new(), // unreachable: all threads joined by scope
    };
    aggregate(mix, outcomes, started.elapsed(), allow_503)
}

/// Fold raw outcomes into the report, checking every request's status
/// class against its scripted expectation.
fn aggregate(
    mix: &[LoadRequest],
    mut outcomes: Vec<Outcome>,
    elapsed: Duration,
    allow_503: bool,
) -> LoadReport {
    outcomes.sort_by_key(|o| o.index);
    let mut statuses = BTreeMap::new();
    let mut violations = Vec::new();
    for outcome in &outcomes {
        *statuses.entry(outcome.status).or_insert(0) += 1;
        let ok_class = (200..300).contains(&outcome.status);
        let client_class = (400..500).contains(&outcome.status);
        let fine = match mix[outcome.index].expect {
            ExpectClass::Ok => ok_class || (allow_503 && outcome.status == 503),
            ExpectClass::ClientError => client_class,
        };
        if !fine {
            violations.push(format!("{}:{}", mix[outcome.index].name, outcome.status));
        }
    }
    LoadReport {
        outcomes,
        statuses,
        violations,
        elapsed,
    }
}

/// Render one request for a keep-alive connection (no `Connection`
/// header: HTTP/1.1 defaults to keep-alive, and the server honors it).
fn render_keepalive_request(wire: &mut Vec<u8>, addr: &str, req: &LoadRequest) {
    wire.extend_from_slice(req.method.as_bytes());
    wire.push(b' ');
    wire.extend_from_slice(req.target.as_bytes());
    wire.extend_from_slice(b" HTTP/1.1\r\nHost: ");
    wire.extend_from_slice(addr.as_bytes());
    wire.extend_from_slice(b"\r\n");
    if !req.body.is_empty() || req.method == "POST" {
        wire.extend_from_slice(format!("Content-Length: {}\r\n", req.body.len()).as_bytes());
    }
    wire.extend_from_slice(b"\r\n");
    wire.extend_from_slice(&req.body);
}

/// Try to split one complete response off the front of `buf`. Returns
/// `(status, body, close_hinted, total_consumed)`.
fn split_response(buf: &[u8]) -> Option<(u16, Vec<u8>, bool, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut lines = head.lines();
    let status = lines
        .next()?
        .split_whitespace()
        .nth(1)?
        .parse::<u16>()
        .ok()?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        let (name, value) = line.split_once(':')?;
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().ok()?;
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.trim().eq_ignore_ascii_case("close");
        }
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return None;
    }
    Some((status, buf[head_end + 4..total].to_vec(), close, total))
}

/// Read one complete response from a persistent connection, carrying
/// partial bytes across calls in `residue`.
fn read_one_response(
    stream: &mut TcpStream,
    residue: &mut Vec<u8>,
) -> std::io::Result<(u16, Vec<u8>, bool)> {
    loop {
        if let Some((status, body, close, total)) = split_response(residue) {
            residue.drain(..total);
            return Ok((status, body, close));
        }
        let mut scratch = [0u8; 16 * 1024];
        match stream.read(&mut scratch)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ))
            }
            n => residue.extend_from_slice(&scratch[..n]),
        }
    }
}

/// A single persistent keep-alive connection for hand-driven round
/// trips. The bench harness uses this to measure the protocol floor
/// without paying per-request connection setup; when the server retires
/// the connection (keep-alive request budget, shutdown) the next call
/// reconnects transparently.
pub struct KeepAliveClient {
    addr: String,
    stream: Option<TcpStream>,
    residue: Vec<u8>,
}

impl KeepAliveClient {
    /// Open the initial connection to `addr`.
    pub fn connect(addr: &str) -> std::io::Result<KeepAliveClient> {
        let mut client = KeepAliveClient {
            addr: addr.to_string(),
            stream: None,
            residue: Vec::new(),
        };
        client.reconnect()?;
        Ok(client)
    }

    fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        self.residue.clear();
        self.stream = Some(stream);
        Ok(())
    }

    fn try_call(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>, bool)> {
        let stream = self.stream.as_mut().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "no connection")
        })?;
        let mut wire = Vec::with_capacity(128 + body.len());
        wire.extend_from_slice(method.as_bytes());
        wire.push(b' ');
        wire.extend_from_slice(target.as_bytes());
        wire.extend_from_slice(b" HTTP/1.1\r\nHost: ");
        wire.extend_from_slice(self.addr.as_bytes());
        wire.extend_from_slice(b"\r\n");
        if !body.is_empty() || method == "POST" {
            wire.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        wire.extend_from_slice(body);
        stream.write_all(&wire)?;
        read_one_response(stream, &mut self.residue)
    }

    /// One round trip on the live connection, reconnecting and retrying
    /// once if the server hung up between requests.
    pub fn call(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let mut last_err = None;
        for _ in 0..2 {
            if self.stream.is_none() {
                self.reconnect()?;
            }
            match self.try_call(method, target, body) {
                Ok((status, response, close)) => {
                    if close {
                        self.stream = None;
                    }
                    return Ok((status, response));
                }
                Err(e) => {
                    self.stream = None;
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("keep-alive call failed")))
    }
}

/// Drive the scripted `mix` over persistent keep-alive connections:
/// `concurrency` closed-loop threads, each claiming `pipeline_depth`
/// consecutive indices per turn, writing them as one pipelined burst and
/// reading the responses in order. A server-initiated close (request
/// budget, error) triggers a reconnect that re-sends the unanswered tail
/// of the chunk, so every mix entry still gets exactly one outcome.
pub fn run_persistent(
    addr: &str,
    mix: &[LoadRequest],
    concurrency: usize,
    pipeline_depth: usize,
    allow_503: bool,
) -> LoadReport {
    let depth = pipeline_depth.max(1);
    let cursor = Arc::new(AtomicUsize::new(0));
    let collected: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::with_capacity(mix.len())));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            let cursor = Arc::clone(&cursor);
            let collected = Arc::clone(&collected);
            scope.spawn(move || {
                let mut conn: Option<TcpStream> = None;
                let mut residue: Vec<u8> = Vec::new();
                let record = |outcome: Outcome| {
                    collected
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(outcome);
                };
                loop {
                    let start = cursor.fetch_add(depth, Ordering::Relaxed);
                    if start >= mix.len() {
                        break;
                    }
                    let end = (start + depth).min(mix.len());
                    let mut pending: Vec<usize> = (start..end).collect();
                    let mut attempts = 0u32;
                    while !pending.is_empty() {
                        let stream = match conn.as_mut() {
                            Some(stream) => stream,
                            None => {
                                residue.clear();
                                match TcpStream::connect(addr) {
                                    Ok(stream) => {
                                        let _t =
                                            stream.set_read_timeout(Some(Duration::from_secs(30)));
                                        let _t =
                                            stream.set_write_timeout(Some(Duration::from_secs(30)));
                                        let _n = stream.set_nodelay(true);
                                        conn.insert(stream)
                                    }
                                    Err(_) => {
                                        attempts += 1;
                                        if attempts > 5 {
                                            break;
                                        }
                                        std::thread::sleep(Duration::from_millis(5));
                                        continue;
                                    }
                                }
                            }
                        };
                        let burst_started = Instant::now();
                        let mut wire = Vec::new();
                        for &index in &pending {
                            render_keepalive_request(&mut wire, addr, &mix[index]);
                        }
                        if stream.write_all(&wire).is_err() {
                            conn = None;
                            attempts += 1;
                            if attempts > 5 {
                                break;
                            }
                            continue;
                        }
                        let mut answered = 0;
                        let mut server_closed = false;
                        for &index in &pending {
                            match read_one_response(stream, &mut residue) {
                                Ok((status, body, close)) => {
                                    record(Outcome {
                                        index,
                                        status,
                                        body,
                                        latency: burst_started.elapsed(),
                                    });
                                    answered += 1;
                                    if close {
                                        server_closed = true;
                                        break;
                                    }
                                }
                                Err(_) => {
                                    server_closed = true;
                                    break;
                                }
                            }
                        }
                        pending.drain(..answered);
                        if server_closed {
                            conn = None;
                        }
                        if answered > 0 {
                            attempts = 0;
                        } else {
                            attempts += 1;
                            if attempts > 5 {
                                break;
                            }
                        }
                    }
                    // Connect/read failures exhausted their retries:
                    // status 0 marks the loss (and fails expectations).
                    for index in pending {
                        record(Outcome {
                            index,
                            status: 0,
                            body: Vec::new(),
                            latency: Duration::ZERO,
                        });
                    }
                }
            });
        }
    });
    let outcomes = match Arc::try_unwrap(collected) {
        Ok(mutex) => mutex
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
        Err(_) => Vec::new(), // unreachable: all threads joined by scope
    };
    aggregate(mix, outcomes, started.elapsed(), allow_503)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_in_total_and_seed() {
        let a = build_mix(64, 7);
        let b = build_mix(64, 7);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.body, y.body);
            assert_eq!(x.expect, y.expect);
        }
        let c = build_mix(64, 8);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.body != y.body),
            "different seeds must differ somewhere"
        );
    }

    #[test]
    fn mix_contains_exact_repeats_and_both_classes() {
        let mix = build_mix(64, 7);
        let repeats = mix
            .iter()
            .enumerate()
            .filter(|(i, r)| i % 10 == 3 && mix.iter().take(*i).any(|p| p.body == r.body))
            .count();
        assert!(repeats >= 6, "cache food missing: {repeats}");
        assert!(mix.iter().any(|r| r.expect == ExpectClass::ClientError));
        assert!(mix.iter().any(|r| r.expect == ExpectClass::Ok));
    }

    #[test]
    fn repeat_donors_are_always_well_formed() {
        for total in [16usize, 64, 200] {
            let mix = build_mix(total, 3);
            for (i, r) in mix.iter().enumerate() {
                if i % 10 == 3 {
                    assert_eq!(r.expect, ExpectClass::Ok, "repeat {i} donor malformed");
                }
            }
        }
    }

    #[test]
    fn mix_contains_feedback_of_both_classes_with_distinct_ok_bodies() {
        let mix = build_mix(64, 7);
        let ok_feedback: Vec<_> = mix
            .iter()
            .filter(|r| r.target == "/v1/feedback" && r.expect == ExpectClass::Ok)
            .collect();
        let bad_feedback = mix
            .iter()
            .filter(|r| r.target == "/v1/feedback" && r.expect == ExpectClass::ClientError)
            .count();
        assert!(ok_feedback.len() >= 5, "measured feedback missing");
        assert!(bad_feedback >= 5, "malformed feedback missing");
        // Distinct bodies: the reservoir's insert counter equals the
        // feedback count regardless of arrival order only when no two
        // scripted events are exact duplicates.
        for (a, x) in ok_feedback.iter().enumerate() {
            for y in ok_feedback.iter().skip(a + 1) {
                assert_ne!(x.body, y.body, "duplicate scripted feedback");
            }
        }
    }

    #[test]
    fn feedback_bodies_embed_format_generation_and_outcome() {
        let measured = String::from_utf8(feedback_body(9, "CSR5", 3, 0.00025)).unwrap();
        assert!(measured.starts_with("{\"features\":["));
        assert!(measured.contains("\"format\":\"CSR5\""), "{measured}");
        assert!(measured.contains("\"generation\":3"), "{measured}");
        assert!(measured.contains("\"seconds\":0.00025"), "{measured}");
        let failed = String::from_utf8(feedback_failed_body(9, "ELL", 1)).unwrap();
        assert!(failed.contains("\"status\":\"failed\""), "{failed}");
        assert!(failed.contains("\"generation\":1"), "{failed}");
        // Every advertised label round-trips through the server's format
        // table (compile-time drift check against spmv_matrix).
        for (label, format) in FORMAT_LABELS.iter().zip(spmv_matrix::Format::ALL) {
            assert_eq!(*label, format.label(), "FORMAT_LABELS out of sync");
        }
    }

    #[test]
    fn generated_matrices_parse() {
        let mut rng = Lcg::new(5);
        for body in [
            banded_mm(32, 2),
            scattered_mm(20, 3, &mut rng),
            skewed_mm(24),
        ] {
            spmv_matrix::mm::read_matrix_market::<f64, _>(&body[..])
                .expect("generator emits valid mm");
        }
    }

    #[test]
    fn feature_bodies_are_valid_json_with_17_finite_values() {
        for seed in 0..8 {
            let body = feature_body(seed);
            let text = std::str::from_utf8(&body).unwrap();
            assert!(text.starts_with("{\"features\":["));
            let inner = text
                .trim_start_matches("{\"features\":[")
                .trim_end_matches("]}");
            let values: Vec<f64> = inner.split(',').map(|v| v.parse().unwrap()).collect();
            assert_eq!(values.len(), 17);
            assert!(values.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn response_parser_splits_status_and_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi";
        let (code, body) = parse_response(raw).unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, b"hi");
    }
}
