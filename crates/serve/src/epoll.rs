//! Minimal epoll readiness facility, hand-declared against the C library
//! the Rust runtime already links.
//!
//! The serve crate is std-only by policy, and std exposes no readiness
//! API — but every Linux Rust binary is already linked against a libc
//! that exports `epoll_create1`/`epoll_ctl`/`epoll_wait`. Declaring
//! those three symbols ourselves costs zero new dependencies and zero
//! vendored code; this module is the entire FFI surface of the crate.
//!
//! Scope is deliberately tiny: level-triggered readiness on sockets the
//! caller owns, a `u64` token per registration, millisecond waits. No
//! edge-triggered mode (the event loop re-polls naturally), no oneshot,
//! no timerfd/signalfd — deadlines ride on the wait timeout instead.
//!
//! Everything here returns `io::Error` from `errno` on failure; nothing
//! panics. The only `unsafe` is the syscall boundary itself, and each
//! call site documents why it is sound.

#![allow(unsafe_code)]
// The full readiness vocabulary is declared even where the event loop
// only arms a subset; an FFI surface is documented whole or not at all.
#![allow(dead_code)]

use std::io;
use std::os::fd::{AsRawFd, RawFd};

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never needs arming.
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`); always reported, never needs arming.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Wake only one waiter per event (`EPOLLEXCLUSIVE`, Linux 4.5+). Used
/// on the shared listener so a connect does not wake every shard.
pub const EPOLLEXCLUSIVE: u32 = 1 << 28;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// The kernel's `struct epoll_event`. Packed on x86_64 (a 32-bit ABI
/// fossil the 64-bit ABI kept for compatibility); naturally aligned
/// everywhere else.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct Event {
    /// Ready-state bit set (`EPOLLIN | …`).
    pub events: u32,
    /// The caller's token from [`Epoll::add`].
    pub data: u64,
}

impl Event {
    /// The registration token carried back by the kernel. By-value
    /// reads are the only safe access on the x86_64 packed layout.
    pub fn token(&self) -> u64 {
        self.data
    }

    /// The readiness bits for this event.
    pub fn ready(&self) -> u32 {
        self.events
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// An owned epoll instance. Closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // the only failure mode and is checked below.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = Event {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. `fd` validity is the caller's contract (we only
        // pass fds of sockets the event loop owns).
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with `interest`, tagging events with `token`.
    pub fn add<F: AsRawFd>(&self, fd: &F, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), interest, token)
    }

    /// Change the interest set of an already-registered `fd`.
    pub fn modify<F: AsRawFd>(&self, fd: &F, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd.as_raw_fd(), interest, token)
    }

    /// Deregister `fd`. Errors are swallowed: the fd may already be
    /// closed, and deregistration is best-effort on teardown paths.
    pub fn remove<F: AsRawFd>(&self, fd: &F) {
        let _ignored = self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0);
    }

    /// Wait up to `timeout_ms` (-1 blocks indefinitely) and fill
    /// `events`; returns the ready prefix. EINTR retries internally —
    /// callers treat a premature empty return as a timeout tick.
    pub fn wait<'e>(&self, events: &'e mut [Event], timeout_ms: i32) -> io::Result<&'e [Event]> {
        loop {
            let cap = events.len().min(i32::MAX as usize) as i32;
            // SAFETY: the pointer/len pair describes `events`, which is
            // live and writable for the duration of the call; the kernel
            // writes at most `cap` entries and returns how many.
            let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), cap, timeout_ms) };
            if rc >= 0 {
                return Ok(&events[..rc as usize]);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` came from epoll_create1 and is closed
        // exactly once (Drop runs once).
        let _ignored = unsafe { close(self.fd) };
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn listener_readiness_fires_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(&listener, EPOLLIN, 7).unwrap();

        let mut events = [Event { events: 0, data: 0 }; 8];
        // Nothing pending yet: a zero-timeout wait returns empty.
        assert!(ep.wait(&mut events, 0).unwrap().is_empty());

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let ready = ep.wait(&mut events, 2_000).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].token(), 7);
        assert!(ready[0].ready() & EPOLLIN != 0);
    }

    #[test]
    fn stream_data_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _peer) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        // A fresh socket armed for EPOLLOUT is immediately writable.
        ep.add(&server_side, EPOLLOUT, 1).unwrap();
        let mut events = [Event { events: 0, data: 0 }; 8];
        let ready = ep.wait(&mut events, 2_000).unwrap();
        assert!(ready
            .iter()
            .any(|e| e.token() == 1 && e.ready() & EPOLLOUT != 0));

        // Switch to read interest; quiet until the client writes.
        ep.modify(&server_side, EPOLLIN | EPOLLRDHUP, 2).unwrap();
        assert!(ep.wait(&mut events, 0).unwrap().is_empty());
        client.write_all(b"ping").unwrap();
        let ready = ep.wait(&mut events, 2_000).unwrap();
        assert!(ready
            .iter()
            .any(|e| e.token() == 2 && e.ready() & EPOLLIN != 0));

        // Peer half-close surfaces as RDHUP.
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let ready = ep.wait(&mut events, 2_000).unwrap();
        assert!(ready
            .iter()
            .any(|e| e.ready() & (EPOLLRDHUP | EPOLLHUP | EPOLLIN) != 0));

        ep.remove(&server_side);
        assert!(ep.wait(&mut events, 0).unwrap().is_empty());
    }
}
