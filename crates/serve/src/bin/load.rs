//! `spmv-serve-load` — deterministic closed-loop load generator.
//!
//! Usage:
//!   spmv-serve-load --addr HOST:PORT [--requests N] [--concurrency N]
//!                   [--seed N] [--wait-ready-ms N] [--allow-503]
//!                   [--persistent] [--pipeline-depth N] [--shutdown]
//!                   [--lifecycle promote|rollback|corrupt]
//!
//! Drives the scripted request mix from `spmv_serve::loadgen` (a pure
//! function of `--requests`/`--seed`) against a running server and
//! prints one JSON report line: status tallies, throughput, latency
//! quantiles, a log2 latency histogram, and any expectation violations.
//! The default mode is one-shot (`Connection: close` per request — the
//! regression path for old clients); `--persistent` reuses keep-alive
//! connections, and `--pipeline-depth N` additionally pipelines N
//! requests per write burst (implies `--persistent` when > 1).
//! Per-request status-class expectations are enforced identically in
//! both modes. `--shutdown` sends `POST /admin/shutdown` after the run
//! — the CI smoke job uses that to collect the server's exit manifest.
//!
//! `--lifecycle <kind>` replaces the concurrent mix with a **serial**
//! online-learning scenario from `spmv_serve::lifecycle` (feedback →
//! retrain → canary → swap, then rollback or corruption depending on
//! the kind), asserting generation numbers, canary phases, and
//! lifecycle counters along the way. The server must run with the
//! matching `--online-*` flags and `--cache-capacity 0`; violations
//! exit 7 exactly like mix expectation failures.
//!
//! Exit codes (stable, for scripting):
//!   0  every request matched its expected status class
//!   2  usage error
//!   6  the server never became ready
//!   7  at least one response contradicted its expectation

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;
use std::time::Duration;

use spmv_serve::lifecycle::{self, LifecycleKind};
use spmv_serve::loadgen;

const EXIT_USAGE: u8 = 2;
const EXIT_NOT_READY: u8 = 6;
const EXIT_VIOLATIONS: u8 = 7;

const USAGE: &str = "usage: spmv-serve-load --addr HOST:PORT [--requests N] \
                     [--concurrency N] [--seed N] [--wait-ready-ms N] \
                     [--allow-503] [--persistent] [--pipeline-depth N] \
                     [--shutdown] [--lifecycle promote|rollback|corrupt]";

fn fail(code: u8, msg: &str) -> ExitCode {
    eprintln!("spmv-serve-load: error: {msg}");
    ExitCode::from(code)
}

struct Opts {
    addr: String,
    requests: usize,
    concurrency: usize,
    seed: u64,
    wait_ready_ms: u64,
    allow_503: bool,
    persistent: bool,
    pipeline_depth: usize,
    shutdown: bool,
    lifecycle: Option<LifecycleKind>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Option<Opts>, String> {
    let mut args = args;
    let mut addr = None;
    let mut requests = 64usize;
    let mut concurrency = 4usize;
    let mut seed = 7u64;
    let mut wait_ready_ms = 10_000u64;
    let mut allow_503 = false;
    let mut persistent = false;
    let mut pipeline_depth = 1usize;
    let mut shutdown = false;
    let mut lifecycle_kind = None;
    fn number(flag: &str, value: Option<String>) -> Result<u64, String> {
        value
            .as_deref()
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("{flag} needs a non-negative integer"))
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = Some(v),
                None => return Err("--addr needs HOST:PORT".into()),
            },
            "--requests" => requests = number(&a, args.next())? as usize,
            "--concurrency" => concurrency = (number(&a, args.next())? as usize).max(1),
            "--seed" => seed = number(&a, args.next())?,
            "--wait-ready-ms" => wait_ready_ms = number(&a, args.next())?,
            "--allow-503" => allow_503 = true,
            "--persistent" => persistent = true,
            "--pipeline-depth" => pipeline_depth = (number(&a, args.next())? as usize).max(1),
            "--shutdown" => shutdown = true,
            "--lifecycle" => match args.next().as_deref().and_then(LifecycleKind::parse) {
                Some(kind) => lifecycle_kind = Some(kind),
                None => return Err("--lifecycle needs promote|rollback|corrupt".into()),
            },
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'; see --help")),
        }
    }
    let addr = addr.ok_or_else(|| "missing --addr".to_string())?;
    Ok(Some(Opts {
        addr,
        requests,
        concurrency,
        seed,
        wait_ready_ms,
        allow_503,
        persistent: persistent || pipeline_depth > 1,
        pipeline_depth,
        shutdown,
        lifecycle: lifecycle_kind,
    }))
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{USAGE}");
            return fail(EXIT_USAGE, &msg);
        }
    };

    if let Err(e) = loadgen::wait_ready(&opts.addr, Duration::from_millis(opts.wait_ready_ms)) {
        return fail(
            EXIT_NOT_READY,
            &format!(
                "{} not ready after {}ms: {e}",
                opts.addr, opts.wait_ready_ms
            ),
        );
    }

    let violations = if let Some(kind) = opts.lifecycle {
        let script = lifecycle::lifecycle_script(kind, opts.seed);
        let report = lifecycle::run_lifecycle(&opts.addr, &script);
        println!("{}", report.to_json());
        report.violations
    } else {
        let mix = loadgen::build_mix(opts.requests, opts.seed);
        let report = if opts.persistent {
            loadgen::run_persistent(
                &opts.addr,
                &mix,
                opts.concurrency,
                opts.pipeline_depth,
                opts.allow_503,
            )
        } else {
            loadgen::run(&opts.addr, &mix, opts.concurrency, opts.allow_503)
        };
        println!("{}", report.to_json());
        report.violations
    };

    if opts.shutdown {
        match loadgen::send_shutdown(&opts.addr) {
            Ok(code) => eprintln!("spmv-serve-load: shutdown request answered {code}"),
            Err(e) => eprintln!("spmv-serve-load: shutdown request failed: {e}"),
        }
    }

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        fail(
            EXIT_VIOLATIONS,
            &format!(
                "{} responses contradicted expectations: {}",
                violations.len(),
                violations.join(", ")
            ),
        )
    }
}
