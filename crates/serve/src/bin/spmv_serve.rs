//! `spmv-serve` — the format advisor as a long-lived inference service.
//!
//! Usage:
//!   spmv-serve [--model <advisor.json>] [--addr HOST:PORT]
//!              [--workers N] [--queue-depth N] [--cache-capacity N]
//!              [--max-body-bytes N] [--read-timeout-ms N] [--max-batch N]
//!              [--keep-alive-max N] [--idle-timeout-ms N]
//!              [--online-retrain-after N] [--online-reservoir N]
//!              [--online-canary-window N] [--online-agree-pct N]
//!              [--online-watchdog-window N] [--online-watchdog-errors N]
//!              [--online-seed N] [--online-artifact-dir DIR]
//!              [--online-corrupt-candidate]
//!              [--trace-out <trace.json>]
//!
//! The `--online-*` family configures the online-learning loop (DESIGN.md
//! §4i): `POST /v1/feedback` events land in a seeded reservoir, every
//! `--online-retrain-after` measured events a background thread retrains
//! a candidate, the candidate shadow-scores `--online-canary-window` live
//! requests and is hot-swapped in only at `--online-agree-pct` percent
//! agreement, after which `--online-watchdog-errors` failures within
//! `--online-watchdog-window` attributed events roll it back.
//! Retraining is **off** by default (`--online-retrain-after 0`).
//! `--online-artifact-dir` persists every candidate's envelope bytes for
//! replay diffing; `--online-corrupt-candidate` is the fault hook proving
//! envelope validation gates promotion.
//!
//! `--workers` is the shard count of the event-driven core: each worker
//! is a shared-nothing epoll loop owning the connections it accepted.
//! Connections are persistent by default (HTTP/1.1 keep-alive, bounded
//! by `--keep-alive-max` requests and `--idle-timeout-ms` of silence);
//! clients sending `Connection: close` get the old one-shot behavior.
//!
//! Boot behavior is the graceful-degradation contract from DESIGN.md §4e
//! applied at process scope: a missing or rejected `--model` artifact
//! does **not** abort the server — it boots in heuristic mode, says so on
//! stderr and in `/healthz`, and every response carries
//! `"source":"heuristic"`. (The one-shot `spmv-advisor` CLI makes the
//! opposite choice — hard exit 4 — because a script asked for *that*
//! artifact; a fleet wants capacity to stay up.)
//!
//! The server prints exactly one `listening on HOST:PORT` line to stdout
//! once it accepts connections, then runs until `POST /admin/shutdown`
//! (or SIGKILL). On orderly shutdown, queued and in-flight requests
//! complete first; with `--trace-out` (or `SPMV_TRACE=PATH`) the run
//! manifest is written at exit.
//!
//! Exit codes (stable, for scripting):
//!   0  orderly shutdown
//!   2  usage error
//!   5  could not bind the listen address

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use spmv_core::AdvisorHandle;
use spmv_serve::{Server, ServerConfig};

const EXIT_USAGE: u8 = 2;
const EXIT_BIND: u8 = 5;

const USAGE: &str = "usage: spmv-serve [--model <advisor.json>] [--addr HOST:PORT] \
                     [--workers N] [--queue-depth N] [--cache-capacity N] \
                     [--max-body-bytes N] [--read-timeout-ms N] [--max-batch N] \
                     [--keep-alive-max N] [--idle-timeout-ms N] \
                     [--handler-delay-ms N] [--online-retrain-after N] \
                     [--online-reservoir N] [--online-canary-window N] \
                     [--online-agree-pct N] [--online-watchdog-window N] \
                     [--online-watchdog-errors N] [--online-seed N] \
                     [--online-artifact-dir DIR] [--online-corrupt-candidate] \
                     [--trace-out <trace.json>]";

fn fail(code: u8, msg: &str) -> ExitCode {
    eprintln!("spmv-serve: error: {msg}");
    ExitCode::from(code)
}

struct Opts {
    config: ServerConfig,
    model: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Option<Opts>, String> {
    let mut args = args;
    let mut config = ServerConfig {
        enable_admin_shutdown: true,
        ..ServerConfig::default()
    };
    let mut model = None;
    let mut trace_out = None;
    fn number(flag: &str, value: Option<String>) -> Result<usize, String> {
        value
            .as_deref()
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| format!("{flag} needs a non-negative integer"))
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--model" => match args.next() {
                Some(p) => model = Some(PathBuf::from(p)),
                None => return Err("--model needs a path".into()),
            },
            "--trace-out" => match args.next() {
                Some(p) => trace_out = Some(PathBuf::from(p)),
                None => return Err("--trace-out needs a path".into()),
            },
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => return Err("--addr needs HOST:PORT".into()),
            },
            "--workers" => config.workers = number(&a, args.next())?.max(1),
            "--queue-depth" => config.queue_depth = number(&a, args.next())?.max(1),
            "--cache-capacity" => config.cache_capacity = number(&a, args.next())?,
            "--max-body-bytes" => config.max_body_bytes = number(&a, args.next())?,
            "--read-timeout-ms" => config.read_timeout_ms = number(&a, args.next())? as u64,
            "--max-batch" => config.max_batch = number(&a, args.next())?.max(1),
            "--keep-alive-max" => config.keep_alive_max_requests = number(&a, args.next())?.max(1),
            "--idle-timeout-ms" => config.idle_timeout_ms = number(&a, args.next())? as u64,
            "--handler-delay-ms" => config.handler_delay_ms = number(&a, args.next())? as u64,
            "--online-retrain-after" => config.online.retrain_after = number(&a, args.next())?,
            "--online-reservoir" => {
                config.online.reservoir_capacity = number(&a, args.next())?.max(1)
            }
            "--online-canary-window" => {
                config.online.canary_window = number(&a, args.next())?.max(1) as u64
            }
            "--online-agree-pct" => {
                config.online.canary_agree_pct = number(&a, args.next())?.min(100) as u64
            }
            "--online-watchdog-window" => {
                config.online.watchdog_window = number(&a, args.next())?.max(1) as u64
            }
            "--online-watchdog-errors" => {
                config.online.watchdog_errors = number(&a, args.next())?.max(1) as u64
            }
            "--online-seed" => config.online.seed = number(&a, args.next())? as u64,
            "--online-artifact-dir" => match args.next() {
                Some(p) => config.online.artifact_dir = Some(PathBuf::from(p)),
                None => return Err("--online-artifact-dir needs a path".into()),
            },
            "--online-corrupt-candidate" => config.online.corrupt_candidate = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'; see --help")),
        }
    }
    Ok(Some(Opts {
        config,
        model,
        trace_out,
    }))
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{USAGE}");
            return fail(EXIT_USAGE, &msg);
        }
    };

    let trace = spmv_core::TraceSession::start(opts.trace_out.clone());
    if trace.is_none() {
        // No manifest requested: still enable counters so /statz works.
        spmv_observe::enable();
    }

    let handle = match &opts.model {
        Some(path) => AdvisorHandle::from_artifact(path),
        None => AdvisorHandle::heuristic(),
    };
    if let Some(reason) = handle.degraded_reason() {
        eprintln!("spmv-serve: warning: model artifact rejected, serving heuristics ({reason})");
    }
    if trace.is_some() {
        spmv_core::observe::set_provenance("tool", "spmv-serve");
        spmv_core::observe::set_provenance("mode", handle.mode());
        // Online-loop parameters shape the deterministic counters (how
        // many feedbacks schedule a retrain, the reservoir seed), so they
        // are provenance, not timing: two manifests are only comparable
        // when these match.
        spmv_core::observe::set_provenance(
            "online.retrain_after",
            &opts.config.online.retrain_after.to_string(),
        );
        spmv_core::observe::set_provenance("online.seed", &opts.config.online.seed.to_string());
        // Worker count is scheduling, not work: timing-info only, so the
        // deterministic manifest section matches across -w values.
        spmv_core::observe::set_timing_info("workers", &opts.config.workers.to_string());
        spmv_core::observe::set_timing_info("queue_depth", &opts.config.queue_depth.to_string());
    }

    let server = match Server::spawn(opts.config, handle) {
        Ok(server) => server,
        Err(e) => return fail(EXIT_BIND, &format!("binding listener: {e}")),
    };
    println!("spmv-serve: listening on {}", server.addr());

    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("spmv-serve: shutdown requested, draining...");
    server.shutdown();

    if let Some(session) = trace {
        match session.finish() {
            Ok(path) => eprintln!("spmv-serve: wrote run manifest to {}", path.display()),
            Err(e) => eprintln!("spmv-serve: error: could not write run manifest: {e}"),
        }
    }
    ExitCode::SUCCESS
}
