//! Leader–follower micro-batching over the shared advisor.
//!
//! Feature-vector requests are cheap individually but the model holds a
//! single shared artifact; batching amortizes the per-call bookkeeping
//! (projection setup, observability) and bounds lock traffic. The shape:
//!
//! 1. every submitter enqueues its job on a shared queue;
//! 2. whoever can take the *model lock* becomes the leader, drains up to
//!    `max_batch` jobs, runs them through
//!    [`AdvisorHandle::recommend_features_batch`], and publishes each
//!    result into the job's completion slot;
//! 3. submitters whose job was drained by another leader wait on their
//!    slot's condvar.
//!
//! There is no pacing timer: a leader is elected the moment any job is
//! enqueued and the model is free, so a lone request never waits for a
//! batch to "fill up". Batch *sizes* therefore depend on arrival timing —
//! which is why only the total job count is counted
//! (`serve.batch.jobs`), never the number of flushes: totals are a pure
//! function of the request mix, flush counts are not, and the manifest's
//! deterministic section may only carry the former.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use spmv_core::{AdvisorHandle, RecommendResponse};
use spmv_features::FeatureVector;

struct CompletionSlot {
    done: Mutex<Option<RecommendResponse>>,
    cond: Condvar,
}

impl CompletionSlot {
    fn take(&self) -> Option<RecommendResponse> {
        self.done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }

    fn put(&self, resp: RecommendResponse) {
        *self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(resp);
        self.cond.notify_all();
    }
}

struct Job {
    fv: FeatureVector,
    slot: Arc<CompletionSlot>,
}

/// The batcher. One per server; shared by all worker threads.
pub struct Batcher {
    queue: Mutex<VecDeque<Job>>,
    /// Serializes model access; the holder is the current leader.
    model: Mutex<()>,
    max_batch: usize,
}

impl Batcher {
    /// A batcher that drains at most `max_batch` jobs per model pass
    /// (clamped to at least 1).
    pub fn new(max_batch: usize) -> Batcher {
        Batcher {
            queue: Mutex::new(VecDeque::new()),
            model: Mutex::new(()),
            max_batch: max_batch.max(1),
        }
    }

    fn drain(&self, limit: usize) -> Vec<Job> {
        let mut queue = self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let n = queue.len().min(limit);
        queue.drain(..n).collect()
    }

    /// Run `fv` through the advisor, possibly batched with concurrent
    /// submissions. Blocks until this job's result is ready.
    pub fn submit(&self, handle: &AdvisorHandle, fv: FeatureVector) -> RecommendResponse {
        spmv_observe::counter("serve.batch.jobs", 1);
        let slot = Arc::new(CompletionSlot {
            done: Mutex::new(None),
            cond: Condvar::new(),
        });
        {
            let mut queue = self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queue.push_back(Job {
                fv,
                slot: Arc::clone(&slot),
            });
        }
        loop {
            if let Some(resp) = slot.take() {
                return resp;
            }
            match self.model.try_lock() {
                Ok(_leader) => {
                    // Leader: drain and execute until the queue is empty,
                    // then re-check our own slot (another leader may have
                    // carried our job before we won the lock).
                    loop {
                        let batch = self.drain(self.max_batch);
                        if batch.is_empty() {
                            break;
                        }
                        let fvs: Vec<FeatureVector> =
                            batch.iter().map(|job| job.fv.clone()).collect();
                        let responses = handle.recommend_features_batch(&fvs);
                        for (job, resp) in batch.into_iter().zip(responses) {
                            job.slot.put(resp);
                        }
                    }
                }
                Err(_) => {
                    // Another leader is mid-pass and may be carrying our
                    // job; wait briefly on our slot, then re-check. The
                    // timeout is a liveness backstop, not a pacing delay.
                    let guard = slot
                        .done
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if guard.is_some() {
                        continue;
                    }
                    let _unused = slot
                        .cond
                        .wait_timeout(guard, Duration::from_millis(5))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use spmv_features::FeatureId;

    fn fv(mu: f64) -> FeatureVector {
        let mut values = [0.0; spmv_features::FEATURE_COUNT];
        values[FeatureId::NRows as usize] = 64.0;
        values[FeatureId::NCols as usize] = 64.0;
        values[FeatureId::NnzTot as usize] = mu * 64.0;
        values[FeatureId::NnzMu as usize] = mu;
        values[FeatureId::NnzSigma as usize] = mu / 4.0;
        values[FeatureId::NnzMax as usize] = mu * 1.5;
        FeatureVector::from_values(values)
    }

    #[test]
    fn single_submit_matches_direct_call() {
        let handle = AdvisorHandle::heuristic();
        let batcher = Batcher::new(8);
        let direct = handle.recommend_features(&fv(3.0));
        let batched = batcher.submit(&handle, fv(3.0));
        assert_eq!(direct.to_json(), batched.to_json());
    }

    #[test]
    fn concurrent_submits_each_get_their_own_answer() {
        let handle = Arc::new(AdvisorHandle::heuristic());
        let batcher = Arc::new(Batcher::new(4));
        let workers: Vec<_> = (0..16)
            .map(|i| {
                let handle = Arc::clone(&handle);
                let batcher = Arc::clone(&batcher);
                std::thread::spawn(move || {
                    let mu = 1.0 + f64::from(i);
                    let got = batcher.submit(&handle, fv(mu));
                    let want = handle.recommend_features(&fv(mu));
                    assert_eq!(got.to_json(), want.to_json(), "mu={mu}");
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    }
}
