//! Leader–follower micro-batching over the shared advisor.
//!
//! Feature-vector requests are cheap individually but the model holds a
//! single shared artifact; batching amortizes the per-call bookkeeping
//! (projection setup, observability) and bounds lock traffic. The shape:
//!
//! 1. every submitter enqueues its job — feature vector plus the
//!    generation snapshot its request took — on a shared queue;
//! 2. whoever can take the *model lock* becomes the leader, drains up to
//!    `max_batch` jobs, runs each run of same-generation jobs through
//!    [`spmv_core::AdvisorHandle::recommend_features_batch`], and
//!    publishes each result into the job's completion slot;
//! 3. submitters whose job was drained by another leader wait on their
//!    slot's condvar.
//!
//! Jobs carry their own [`Generation`] so a hot-swap mid-queue cannot
//! tear a request: the leader answers every job with the generation its
//! submitter snapshotted, never with whatever happens to be active when
//! the batch drains. Around a swap a single drain may therefore split
//! into two batch calls — the price of coherence, paid only in the
//! instant a swap lands.
//!
//! There is no pacing timer: a leader is elected the moment any job is
//! enqueued and the model is free, so a lone request never waits for a
//! batch to "fill up". Batch *sizes* therefore depend on arrival timing —
//! which is why only the total job count is counted
//! (`serve.batch.jobs`), never the number of flushes: totals are a pure
//! function of the request mix, flush counts are not, and the manifest's
//! deterministic section may only carry the former.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use spmv_core::{Generation, RecommendResponse};
use spmv_features::FeatureVector;

struct CompletionSlot {
    done: Mutex<Option<RecommendResponse>>,
    cond: Condvar,
}

impl CompletionSlot {
    fn take(&self) -> Option<RecommendResponse> {
        self.done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }

    fn put(&self, resp: RecommendResponse) {
        *self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(resp);
        self.cond.notify_all();
    }
}

struct Job {
    fv: FeatureVector,
    generation: Arc<Generation>,
    slot: Arc<CompletionSlot>,
}

/// The batcher. One per server; shared by all worker threads.
pub struct Batcher {
    queue: Mutex<VecDeque<Job>>,
    /// Serializes model access; the holder is the current leader.
    model: Mutex<()>,
    max_batch: usize,
}

impl Batcher {
    /// A batcher that drains at most `max_batch` jobs per model pass
    /// (clamped to at least 1).
    pub fn new(max_batch: usize) -> Batcher {
        Batcher {
            queue: Mutex::new(VecDeque::new()),
            model: Mutex::new(()),
            max_batch: max_batch.max(1),
        }
    }

    fn drain(&self, limit: usize) -> Vec<Job> {
        let mut queue = self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let n = queue.len().min(limit);
        queue.drain(..n).collect()
    }

    /// Run the drained jobs, one batch call per run of same-generation
    /// jobs, answering each job with the generation its submitter
    /// snapshotted.
    fn execute(batch: Vec<Job>) {
        let mut start = 0;
        while start < batch.len() {
            let generation = &batch[start].generation;
            let end = start
                + batch[start..]
                    .iter()
                    .take_while(|job| Arc::ptr_eq(&job.generation, generation))
                    .count();
            let fvs: Vec<FeatureVector> =
                batch[start..end].iter().map(|job| job.fv.clone()).collect();
            let responses = generation.handle.recommend_features_batch(&fvs);
            for (job, resp) in batch[start..end].iter().zip(responses) {
                job.slot.put(resp);
            }
            start = end;
        }
    }

    /// Run `fv` through `generation`'s advisor, possibly batched with
    /// concurrent submissions. Blocks until this job's result is ready.
    pub fn submit(&self, generation: &Arc<Generation>, fv: FeatureVector) -> RecommendResponse {
        spmv_observe::counter("serve.batch.jobs", 1);
        let slot = Arc::new(CompletionSlot {
            done: Mutex::new(None),
            cond: Condvar::new(),
        });
        {
            let mut queue = self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queue.push_back(Job {
                fv,
                generation: Arc::clone(generation),
                slot: Arc::clone(&slot),
            });
        }
        loop {
            if let Some(resp) = slot.take() {
                return resp;
            }
            match self.model.try_lock() {
                Ok(_leader) => {
                    // Leader: drain and execute until the queue is empty,
                    // then re-check our own slot (another leader may have
                    // carried our job before we won the lock).
                    loop {
                        let batch = self.drain(self.max_batch);
                        if batch.is_empty() {
                            break;
                        }
                        Self::execute(batch);
                    }
                }
                Err(_) => {
                    // Another leader is mid-pass and may be carrying our
                    // job; wait briefly on our slot, then re-check. The
                    // timeout is a liveness backstop, not a pacing delay.
                    let guard = slot
                        .done
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if guard.is_some() {
                        continue;
                    }
                    let _unused = slot
                        .cond
                        .wait_timeout(guard, Duration::from_millis(5))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use spmv_features::FeatureId;

    fn fv(mu: f64) -> FeatureVector {
        let mut values = [0.0; spmv_features::FEATURE_COUNT];
        values[FeatureId::NRows as usize] = 64.0;
        values[FeatureId::NCols as usize] = 64.0;
        values[FeatureId::NnzTot as usize] = mu * 64.0;
        values[FeatureId::NnzMu as usize] = mu;
        values[FeatureId::NnzSigma as usize] = mu / 4.0;
        values[FeatureId::NnzMax as usize] = mu * 1.5;
        FeatureVector::from_values(values)
    }

    #[test]
    fn single_submit_matches_direct_call() {
        let generation = Generation::initial(spmv_core::AdvisorHandle::heuristic());
        let batcher = Batcher::new(8);
        let direct = generation.handle.recommend_features(&fv(3.0));
        let batched = batcher.submit(&generation, fv(3.0));
        assert_eq!(direct.to_json(), batched.to_json());
    }

    #[test]
    fn concurrent_submits_each_get_their_own_answer() {
        let generation = Generation::initial(spmv_core::AdvisorHandle::heuristic());
        let batcher = Arc::new(Batcher::new(4));
        let workers: Vec<_> = (0..16)
            .map(|i| {
                let generation = Arc::clone(&generation);
                let batcher = Arc::clone(&batcher);
                std::thread::spawn(move || {
                    let mu = 1.0 + f64::from(i);
                    let got = batcher.submit(&generation, fv(mu));
                    let want = generation.handle.recommend_features(&fv(mu));
                    assert_eq!(got.to_json(), want.to_json(), "mu={mu}");
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    }

    /// Jobs queued under different generations are answered by their own
    /// generation's advisor, even when one leader drains them together.
    #[test]
    fn mixed_generation_batch_answers_each_job_with_its_own_generation() {
        let gen_a = Generation::initial(spmv_core::AdvisorHandle::heuristic());
        let gen_b = Arc::new(Generation::new(1, spmv_core::AdvisorHandle::heuristic()));
        let batcher = Arc::new(Batcher::new(8));
        let workers: Vec<_> = (0..8)
            .map(|i| {
                let generation = if i % 2 == 0 {
                    Arc::clone(&gen_a)
                } else {
                    Arc::clone(&gen_b)
                };
                let batcher = Arc::clone(&batcher);
                std::thread::spawn(move || {
                    let mu = 1.0 + f64::from(i);
                    let got = batcher.submit(&generation, fv(mu));
                    let want = generation.handle.recommend_features(&fv(mu));
                    assert_eq!(got.to_json(), want.to_json(), "mu={mu}");
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    }
}
