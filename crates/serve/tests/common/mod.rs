//! Shared plumbing for the serve integration tests.
#![allow(dead_code, clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use spmv_core::experiments::ExperimentConfig;
use spmv_core::{AdvisorHandle, Env, FormatAdvisor, SearchBudget};
use spmv_matrix::Precision;
use spmv_serve::{Server, ServerConfig};

/// Train the tiny advisor once per test process and persist it as an
/// artifact; every caller loads the same file, so "the server's model"
/// and "the reference model" are bit-identical by construction. Training
/// reads the committed label cache under the workspace `results/`, which
/// must be addressed absolutely (test processes run with the crate as
/// cwd).
pub fn tiny_artifact() -> PathBuf {
    static ARTIFACT: OnceLock<PathBuf> = OnceLock::new();
    ARTIFACT
        .get_or_init(|| {
            let mut cfg = ExperimentConfig::tiny();
            cfg.cache_path =
                PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/labels_tiny.json");
            let corpus = cfg.corpus();
            let env = Env {
                arch_idx: 1,
                precision: Precision::Double,
            };
            let advisor = FormatAdvisor::train(&corpus, env, SearchBudget::Quick);
            let path = std::env::temp_dir().join(format!(
                "spmv_serve_test_artifact_{}.json",
                std::process::id()
            ));
            advisor.save(&path).expect("save tiny artifact");
            path
        })
        .clone()
}

/// A model-backed handle from the shared tiny artifact.
pub fn tiny_handle() -> AdvisorHandle {
    let handle = AdvisorHandle::from_artifact(&tiny_artifact());
    assert_eq!(handle.mode(), "model", "tiny artifact must load cleanly");
    handle
}

/// Spawn an in-process server with the given config and handle.
pub fn spawn(config: ServerConfig, handle: AdvisorHandle) -> Server {
    Server::spawn(config, handle).expect("bind ephemeral port")
}

/// Write raw bytes to the server, half-close, and read whatever comes
/// back (possibly nothing). The adversarial tests live on this.
pub fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The server may answer-and-close before the full payload is written
    // (that is the point of the early-rejection tests), which surfaces
    // here as EPIPE/ECONNRESET mid-write: keep going and read whatever
    // response made it into the socket.
    let _write = stream.write_all(bytes);
    let _half_close = stream.shutdown(Shutdown::Write);
    let mut out = Vec::new();
    let _read = stream.read_to_end(&mut out);
    out
}

/// Status code of a raw HTTP response (0 when the server sent nothing).
pub fn status_of(response: &[u8]) -> u16 {
    let text = String::from_utf8_lossy(response);
    text.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Body bytes of a raw HTTP response.
pub fn body_of(response: &[u8]) -> Vec<u8> {
    response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| response[p + 4..].to_vec())
        .unwrap_or_default()
}
