//! Online-learning lifecycle over the wire: feedback ingestion, the
//! deterministic retrain, the shadow canary, atomic hot-swap, watchdog
//! rollback, and the corruption gate — all driven through real HTTP
//! against in-process servers.
//!
//! Counter notes: `spmv_observe` counters are process-global, so every
//! test here takes the `SERIAL` lock and asserts counter *deltas* via
//! `/statz` (never absolute values); state assertions (generation,
//! checksum, canary phase) come from `/healthz`, which is per-server.
//! The exact-count assertions on a fresh process live in the CI
//! `canary-smoke` job and the `spmv-core` unit tests.

#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use std::sync::{Arc, Mutex, OnceLock};

use common::{spawn, tiny_handle};
use spmv_core::OnlineConfig;
use spmv_serve::lifecycle::{self, lifecycle_script, LifecycleKind, LifecycleOp};
use spmv_serve::loadgen::{feature_body, feedback_body, http_roundtrip};
use spmv_serve::ServerConfig;

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
    SERIAL
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The lifecycle parameters the scripted scenarios are written against.
fn lifecycle_online_config() -> OnlineConfig {
    OnlineConfig {
        retrain_after: lifecycle::RETRAIN_AFTER,
        canary_window: lifecycle::CANARY_WINDOW,
        canary_agree_pct: lifecycle::CANARY_AGREE_PCT,
        watchdog_window: lifecycle::WATCHDOG_WINDOW,
        watchdog_errors: lifecycle::WATCHDOG_ERRORS,
        seed: 0x5eed,
        ..OnlineConfig::default()
    }
}

/// A server wired for lifecycle runs: model-backed, cache off (so every
/// recommend is shadow-scored), admin surface on (for canary/sync).
fn lifecycle_server_config(online: OnlineConfig) -> ServerConfig {
    ServerConfig {
        workers: 2,
        cache_capacity: 0,
        enable_admin_shutdown: true,
        online,
        ..ServerConfig::default()
    }
}

/// The canned scripts assert absolute counter values via `Statz` ops,
/// which only hold in a fresh process; in-process tests share counters,
/// so strip them and assert state via the remaining `Healthz` ops.
fn without_statz(script: Vec<LifecycleOp>) -> Vec<LifecycleOp> {
    script
        .into_iter()
        .filter(|op| !matches!(op, LifecycleOp::Statz { .. }))
        .collect()
}

fn statz_counter(addr: &str, name: &str) -> u64 {
    let (status, body) = http_roundtrip(addr, "GET", "/statz", b"").unwrap();
    assert_eq!(status, 200);
    let body = String::from_utf8_lossy(&body).to_string();
    body.split(&format!("\"{name}\":"))
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse::<u64>()
                .ok()
        })
        .unwrap_or(0)
}

fn healthz_json(addr: &str) -> String {
    let (status, body) = http_roundtrip(addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);
    String::from_utf8_lossy(&body).to_string()
}

fn json_str(body: &str, key: &str) -> Option<String> {
    let rest = body.split(&format!("\"{key}\":\"")).nth(1)?;
    Some(rest.chars().take_while(|c| *c != '"').collect())
}

fn json_u64(body: &str, key: &str) -> Option<u64> {
    let rest = body.split(&format!("\"{key}\":")).nth(1)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[test]
fn promote_lifecycle_swaps_in_generation_one() {
    let _serial = serial();
    spmv_observe::enable();
    let server = spawn(
        lifecycle_server_config(lifecycle_online_config()),
        tiny_handle(),
    );
    let addr = server.addr().to_string();
    let boot_checksum = json_str(&healthz_json(&addr), "checksum").unwrap();

    let promotions_before = statz_counter(&addr, "online.swap.promotions");
    let script = without_statz(lifecycle_script(LifecycleKind::Promote, 21));
    let report = lifecycle::run_lifecycle(&addr, &script);
    assert_eq!(report.violations, Vec::<String>::new());

    // The new generation is a different artifact with its own checksum,
    // still model-mode, under watchdog observation.
    let health = healthz_json(&addr);
    assert_eq!(json_u64(&health, "generation"), Some(1));
    assert_eq!(json_str(&health, "mode").as_deref(), Some("model"));
    assert_eq!(json_str(&health, "canary").as_deref(), Some("watch"));
    let new_checksum = json_str(&health, "checksum").unwrap();
    assert_ne!(new_checksum, boot_checksum, "promotion must swap artifacts");
    assert_eq!(
        statz_counter(&addr, "online.swap.promotions") - promotions_before,
        1
    );
    server.shutdown();
}

#[test]
fn rollback_lifecycle_reverts_to_generation_zero() {
    let _serial = serial();
    spmv_observe::enable();
    let server = spawn(
        lifecycle_server_config(lifecycle_online_config()),
        tiny_handle(),
    );
    let addr = server.addr().to_string();
    let boot_checksum = json_str(&healthz_json(&addr), "checksum").unwrap();

    let rollbacks_before = statz_counter(&addr, "online.swap.rollbacks");
    let script = without_statz(lifecycle_script(LifecycleKind::Rollback, 33));
    let report = lifecycle::run_lifecycle(&addr, &script);
    assert_eq!(report.violations, Vec::<String>::new());

    // The watchdog put the boot generation (same artifact!) back.
    let health = healthz_json(&addr);
    assert_eq!(json_u64(&health, "generation"), Some(0));
    assert_eq!(json_str(&health, "canary").as_deref(), Some("idle"));
    assert_eq!(json_str(&health, "checksum").unwrap(), boot_checksum);
    assert_eq!(
        statz_counter(&addr, "online.swap.rollbacks") - rollbacks_before,
        1
    );
    server.shutdown();
}

#[test]
fn corrupt_candidate_is_rejected_before_promotion() {
    let _serial = serial();
    spmv_observe::enable();
    let online = OnlineConfig {
        corrupt_candidate: true,
        ..lifecycle_online_config()
    };
    let server = spawn(lifecycle_server_config(online), tiny_handle());
    let addr = server.addr().to_string();

    let rejected_before = statz_counter(&addr, "online.artifact.rejected");
    let script = without_statz(lifecycle_script(LifecycleKind::Corrupt, 47));
    let report = lifecycle::run_lifecycle(&addr, &script);
    assert_eq!(report.violations, Vec::<String>::new());

    // Envelope validation caught the corruption: still generation 0,
    // idle, and the rejection was counted.
    let health = healthz_json(&addr);
    assert_eq!(json_u64(&health, "generation"), Some(0));
    assert_eq!(json_str(&health, "canary").as_deref(), Some("idle"));
    assert_eq!(
        statz_counter(&addr, "online.artifact.rejected") - rejected_before,
        1
    );
    server.shutdown();
}

/// A hot-swap must change every cache key: a response cached under
/// generation 0 is never served for generation 1, and the same body
/// re-caches under the new generation.
#[test]
fn generation_swap_rescopes_the_cache() {
    let _serial = serial();
    spmv_observe::enable();
    // agree_pct 0 decouples promotion from model agreement, so the
    // canary can score *fresh* seeds (cache misses) while the probe
    // bodies stay warm in the cache from the feeding phase.
    let online = OnlineConfig {
        retrain_after: 4,
        canary_window: 2,
        canary_agree_pct: 0,
        seed: 0x5eed,
        ..OnlineConfig::default()
    };
    let config = ServerConfig {
        workers: 2,
        cache_capacity: 64,
        enable_admin_shutdown: true,
        online,
        ..ServerConfig::default()
    };
    let server = spawn(config, tiny_handle());
    let addr = server.addr().to_string();

    let probe = feature_body(900);
    // Feed: 4 probes (distinct bodies, all cache misses), echoing the
    // recommendation back as measured feedback; the 4th schedules the
    // retrain.
    for i in 0..4u64 {
        let body = feature_body(900 + i);
        let (status, resp) = http_roundtrip(&addr, "POST", "/v1/recommend", &body).unwrap();
        assert_eq!(status, 200);
        let resp = String::from_utf8_lossy(&resp).to_string();
        let format = json_str(&resp, "format").unwrap();
        let echo = feedback_body(900 + i, &format, 0, 1e-5 * (i + 1) as f64);
        let (status, _b) = http_roundtrip(&addr, "POST", "/v1/feedback", &echo).unwrap();
        assert_eq!(status, 200, "echo feedback must be accepted");
    }
    let (status, _b) = http_roundtrip(&addr, "POST", "/admin/canary/sync", b"").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        json_str(&healthz_json(&addr), "canary").as_deref(),
        Some("shadow")
    );

    // Warm-cache check while still on generation 0: the probe body is a
    // hit (cached during feeding) and hits never shadow-score.
    let hits_before = statz_counter(&addr, "serve.cache.hits");
    let (status, _b) = http_roundtrip(&addr, "POST", "/v1/recommend", &probe).unwrap();
    assert_eq!(status, 200);
    assert_eq!(statz_counter(&addr, "serve.cache.hits") - hits_before, 1);

    // Close the canary window on fresh seeds (misses, so they score).
    for i in 0..2u64 {
        let (status, _b) =
            http_roundtrip(&addr, "POST", "/v1/recommend", &feature_body(990 + i)).unwrap();
        assert_eq!(status, 200);
    }
    assert_eq!(json_u64(&healthz_json(&addr), "generation"), Some(1));

    // Same probe body, new generation: the old cache line must NOT be
    // served (generation-scoped key → miss), then the second send hits
    // the line cached under the new generation.
    let hits_before = statz_counter(&addr, "serve.cache.hits");
    let misses_before = statz_counter(&addr, "serve.cache.misses");
    let (status, _b) = http_roundtrip(&addr, "POST", "/v1/recommend", &probe).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        statz_counter(&addr, "serve.cache.hits") - hits_before,
        0,
        "a generation-0 cache line leaked into generation 1"
    );
    assert_eq!(
        statz_counter(&addr, "serve.cache.misses") - misses_before,
        1
    );
    let (status, _b) = http_roundtrip(&addr, "POST", "/v1/recommend", &probe).unwrap();
    assert_eq!(status, 200);
    assert_eq!(statz_counter(&addr, "serve.cache.hits") - hits_before, 1);
    server.shutdown();
}

/// Concurrent readers across a live swap: every request is answered, and
/// every `/healthz` reads a coherent (generation, checksum) pair — the
/// boot pair or the promoted pair, never a mixture.
#[test]
fn concurrent_requests_see_coherent_generations_across_swap() {
    let _serial = serial();
    spmv_observe::enable();
    let online = OnlineConfig {
        retrain_after: 4,
        canary_window: 2,
        canary_agree_pct: 0,
        seed: 0x5eed,
        ..OnlineConfig::default()
    };
    let server = spawn(lifecycle_server_config(online), tiny_handle());
    let addr = Arc::new(server.addr().to_string());
    let boot_checksum = json_str(&healthz_json(&addr), "checksum").unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|t| {
            let addr = Arc::clone(&addr);
            let stop = Arc::clone(&stop);
            let boot_checksum = boot_checksum.clone();
            std::thread::spawn(move || {
                let mut seen_gen1 = false;
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    // Live recommend traffic (distinct bodies per thread)
                    // plus a health read, both of which must be coherent.
                    let body = feature_body(5_000 + t * 10_000 + i);
                    let (status, _b) =
                        http_roundtrip(&addr, "POST", "/v1/recommend", &body).unwrap();
                    assert_eq!(status, 200, "no request may drop across a swap");
                    let health = healthz_json(&addr);
                    let generation = json_u64(&health, "generation").unwrap();
                    let checksum = json_str(&health, "checksum").unwrap();
                    match generation {
                        0 => assert_eq!(checksum, boot_checksum, "torn healthz read"),
                        1 => {
                            assert_ne!(checksum, boot_checksum, "torn healthz read");
                            seen_gen1 = true;
                        }
                        other => panic!("impossible generation {other}"),
                    }
                    i += 1;
                }
                seen_gen1
            })
        })
        .collect();

    // Drive the swap while the readers hammer the server.
    for i in 0..4u64 {
        let body = feature_body(700 + i);
        let (status, resp) = http_roundtrip(&addr, "POST", "/v1/recommend", &body).unwrap();
        assert_eq!(status, 200);
        let format = json_str(&String::from_utf8_lossy(&resp), "format").unwrap();
        let echo = feedback_body(700 + i, &format, 0, 2e-5 * (i + 1) as f64);
        let (status, _b) = http_roundtrip(&addr, "POST", "/v1/feedback", &echo).unwrap();
        assert_eq!(status, 200);
    }
    let (status, _b) = http_roundtrip(&addr, "POST", "/admin/canary/sync", b"").unwrap();
    assert_eq!(status, 200);
    // Reader traffic closes the 2-wide canary window on its own; wait
    // for the promotion to land, then let the readers observe it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while json_u64(&healthz_json(&addr), "generation") != Some(1) {
        assert!(
            std::time::Instant::now() < deadline,
            "promotion never landed"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    std::thread::sleep(std::time::Duration::from_millis(100));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    // Join every reader first (a panicked reader must fail the test),
    // then check at least one saw the new generation.
    let observed: Vec<bool> = readers.into_iter().map(|r| r.join().unwrap()).collect();
    assert!(
        observed.iter().any(|&saw| saw),
        "at least one reader must observe the swap"
    );
    server.shutdown();
}

/// End-to-end determinism: two fresh servers fed the identical scripted
/// lifecycle produce byte-identical candidate artifacts.
#[test]
fn replayed_lifecycle_reproduces_the_candidate_artifact_bytes() {
    let _serial = serial();
    spmv_observe::enable();
    let mut artifacts = Vec::new();
    for replica in 0..2 {
        let dir = std::env::temp_dir().join(format!(
            "spmv_serve_online_replay_{}_{replica}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let online = OnlineConfig {
            artifact_dir: Some(dir.clone()),
            ..lifecycle_online_config()
        };
        // Different worker counts on purpose: scheduling must not move
        // a byte of the candidate.
        let config = ServerConfig {
            workers: 1 + replica * 3,
            ..lifecycle_server_config(online)
        };
        let server = spawn(config, tiny_handle());
        let addr = server.addr().to_string();
        let script = without_statz(lifecycle_script(LifecycleKind::Promote, 21));
        let report = lifecycle::run_lifecycle(&addr, &script);
        assert_eq!(report.violations, Vec::<String>::new());
        server.shutdown();
        let artifact = std::fs::read(dir.join("candidate-gen1.json")).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        artifacts.push(artifact);
    }
    assert_eq!(
        artifacts[0], artifacts[1],
        "replayed candidate artifacts must be byte-identical"
    );
}
