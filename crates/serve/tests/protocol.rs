//! Adversarial protocol tests against a live server: every malformed or
//! hostile input must produce a *typed* 4xx/5xx (or deliberate silence
//! for half-requests) and must never take a worker down — the final
//! health check in each test proves the server still answers afterwards.

#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use common::{body_of, raw_exchange, spawn, status_of};
use spmv_core::AdvisorHandle;
use spmv_serve::loadgen::http_roundtrip;
use spmv_serve::ServerConfig;

/// Wire length of the first complete response in `buf` (head + declared
/// body), or None while it is still partial. Every server response
/// carries a Content-Length, so framing needs no chunked handling.
fn response_frame_len(buf: &[u8]) -> Option<usize> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut body_len = 0usize;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                body_len = value.trim().parse().ok()?;
            }
        }
    }
    Some(head_end + 4 + body_len)
}

/// Split a raw capture of pipelined responses into per-response frames.
fn split_frames(mut raw: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    while let Some(total) = response_frame_len(raw) {
        if raw.len() < total {
            break;
        }
        frames.push(raw[..total].to_vec());
        raw = &raw[total..];
    }
    frames
}

/// Read exactly one response frame off a live keep-alive connection,
/// carrying any over-read bytes in `residue` for the next call. Returns
/// an empty frame if the server closes first.
fn recv_one(stream: &mut std::net::TcpStream, residue: &mut Vec<u8>) -> Vec<u8> {
    loop {
        if let Some(total) = response_frame_len(residue) {
            if residue.len() >= total {
                let frame: Vec<u8> = residue.drain(..total).collect();
                return frame;
            }
        }
        let mut scratch = [0u8; 4096];
        match std::io::Read::read(stream, &mut scratch) {
            Ok(0) | Err(_) => return std::mem::take(residue),
            Ok(n) => residue.extend_from_slice(&scratch[..n]),
        }
    }
}

const HEALTHZ_KEEPALIVE: &[u8] = b"GET /healthz HTTP/1.1\r\n\r\n";

fn small_server() -> spmv_serve::Server {
    spawn(
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            max_body_bytes: 64 * 1024,
            read_timeout_ms: 400,
            ..ServerConfig::default()
        },
        AdvisorHandle::heuristic(),
    )
}

fn assert_alive(server: &spmv_serve::Server) {
    let (status, body) =
        http_roundtrip(&server.addr().to_string(), "GET", "/healthz", b"").expect("healthz");
    assert_eq!(status, 200, "server must stay healthy after abuse");
    assert!(String::from_utf8_lossy(&body).contains("\"status\":\"ok\""));
}

#[test]
fn truncated_request_line_gets_silence_not_a_crash() {
    let server = small_server();
    let response = raw_exchange(server.addr(), b"POST /v1/reco");
    assert!(
        response.is_empty(),
        "a half request deserves no response, got {:?}",
        String::from_utf8_lossy(&response)
    );
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn empty_connection_gets_silence() {
    let server = small_server();
    let response = raw_exchange(server.addr(), b"");
    assert!(response.is_empty());
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn non_numeric_content_length_is_400() {
    let server = small_server();
    let response = raw_exchange(
        server.addr(),
        b"POST /v1/recommend HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    );
    assert_eq!(status_of(&response), 400);
    assert!(String::from_utf8_lossy(&body_of(&response)).contains("bad_content_length"));
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn negative_content_length_is_400() {
    let server = small_server();
    let response = raw_exchange(
        server.addr(),
        b"POST /v1/recommend HTTP/1.1\r\nContent-Length: -20\r\n\r\n",
    );
    assert_eq!(status_of(&response), 400);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_declared_body_is_413_before_the_body_is_sent() {
    let server = small_server();
    // Declare far beyond max_body_bytes but send nothing after the
    // headers: the rejection must come from the declaration alone.
    let response = raw_exchange(
        server.addr(),
        b"POST /v1/recommend HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n",
    );
    assert_eq!(status_of(&response), 413);
    assert!(String::from_utf8_lossy(&body_of(&response)).contains("body_too_large"));
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn post_without_content_length_is_411() {
    let server = small_server();
    let response = raw_exchange(server.addr(), b"POST /v1/recommend HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&response), 411);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn chunked_transfer_encoding_is_501() {
    let server = small_server();
    let response = raw_exchange(
        server.addr(),
        b"POST /v1/recommend HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
    );
    assert_eq!(status_of(&response), 501);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn http2_preface_is_505() {
    let server = small_server();
    let response = raw_exchange(server.addr(), b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n");
    assert_eq!(status_of(&response), 505);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn premature_disconnect_mid_body_gets_silence() {
    let server = small_server();
    let response = raw_exchange(
        server.addr(),
        b"POST /v1/recommend HTTP/1.1\r\nContent-Length: 5000\r\n\r\nonly a little",
    );
    assert!(
        response.is_empty(),
        "nothing sensible can be said to a vanished client"
    );
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn stalled_client_is_timed_out_with_408() {
    let server = small_server(); // read_timeout_ms = 400
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    std::io::Write::write_all(&mut stream, b"GET /healthz HT").unwrap();
    // ...and stall without closing. The worker's socket timeout fires.
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut out = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut out).unwrap();
    assert_eq!(status_of(&out), 408);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn non_utf8_body_is_typed_400() {
    let server = small_server();
    // Invalid UTF-8 after an opening brace: the feature-request path must
    // reject it as a typed error, not panic in a string conversion.
    let mut req = b"POST /v1/recommend HTTP/1.1\r\nContent-Length: 5\r\n\r\n".to_vec();
    req.extend_from_slice(b"{\xff\xfe\xfd}");
    let response = raw_exchange(server.addr(), &req);
    assert_eq!(status_of(&response), 400);
    assert!(String::from_utf8_lossy(&body_of(&response)).contains("bad_features"));
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn unrecognized_body_is_typed_400() {
    let server = small_server();
    let (status, body) = http_roundtrip(
        &server.addr().to_string(),
        "POST",
        "/v1/recommend",
        b"this is neither a matrix nor features",
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("unrecognized_body"));
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn malformed_matrix_market_is_typed_400() {
    let server = small_server();
    let addr = server.addr().to_string();
    for body in [
        // Header promises 2 entries, delivers 1.
        &b"%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n"[..],
        // Out-of-bounds coordinate.
        &b"%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1.0\n"[..],
        // Not a number where a value belongs.
        &b"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 banana\n"[..],
    ] {
        let (status, response) = http_roundtrip(&addr, "POST", "/v1/recommend", body).unwrap();
        assert_eq!(status, 400, "body: {}", String::from_utf8_lossy(body));
        assert!(String::from_utf8_lossy(&response).contains("bad_matrix"));
    }
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn wrong_arity_feature_vector_is_typed_400() {
    let server = small_server();
    let (status, body) = http_roundtrip(
        &server.addr().to_string(),
        "POST",
        "/v1/recommend",
        b"{\"features\":[1,2,3]}",
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("expected exactly 17"));
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn non_finite_features_are_typed_400() {
    let server = small_server();
    // serde_json has no Infinity literal, so smuggle a huge exponent in:
    // 1e999 overflows to +inf on parse in permissive parsers or fails —
    // either way the server must answer 400, not 500.
    let (status, _body) = http_roundtrip(
        &server.addr().to_string(),
        "POST",
        "/v1/recommend",
        b"{\"features\":[1e999,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}",
    )
    .unwrap();
    assert_eq!(status, 400);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn unknown_path_is_404_and_wrong_method_is_405() {
    let server = small_server();
    let addr = server.addr().to_string();
    let (status, _) = http_roundtrip(&addr, "GET", "/nope", b"").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_roundtrip(&addr, "DELETE", "/healthz", b"").unwrap();
    assert_eq!(status, 405);
    // Admin shutdown is not routed unless explicitly enabled.
    let (status, _) = http_roundtrip(&addr, "POST", "/admin/shutdown", b"").unwrap();
    assert_eq!(status, 404);
    assert!(!server.shutdown_requested());
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn keep_alive_connection_answers_pipelined_requests_in_order() {
    let server = small_server();
    let mut burst = Vec::new();
    for _ in 0..5 {
        burst.extend_from_slice(HEALTHZ_KEEPALIVE);
    }
    // Half-close after the burst: every complete request must still be
    // answered, in order, before the server hangs up.
    let raw = raw_exchange(server.addr(), &burst);
    let frames = split_frames(&raw);
    assert_eq!(frames.len(), 5, "five requests, five responses");
    for frame in &frames {
        assert_eq!(status_of(frame), 200);
        assert!(String::from_utf8_lossy(frame).contains("Connection: keep-alive"));
    }
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn pipelined_malformed_second_request_answers_first_then_400_and_closes() {
    let server = small_server();
    let mut burst = HEALTHZ_KEEPALIVE.to_vec();
    // Second request has an unparseable request line; a third, valid
    // request rides behind the poison and must be discarded unanswered.
    burst.extend_from_slice(b"BOGUS\r\n\r\n");
    burst.extend_from_slice(HEALTHZ_KEEPALIVE);
    let raw = raw_exchange(server.addr(), &burst);
    let frames = split_frames(&raw);
    assert_eq!(
        frames.iter().map(|f| status_of(f)).collect::<Vec<_>>(),
        vec![200, 400],
        "first answered, poison 400s, tail discarded: {}",
        String::from_utf8_lossy(&raw)
    );
    assert!(
        String::from_utf8_lossy(&frames[1]).contains("Connection: close"),
        "a protocol error must poison the connection"
    );
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn half_close_mid_pipeline_still_answers_the_complete_prefix() {
    let server = small_server();
    let mut burst = Vec::new();
    for _ in 0..3 {
        burst.extend_from_slice(HEALTHZ_KEEPALIVE);
    }
    // A truncated fourth request, then immediate half-close: the three
    // complete requests get answers, the stump gets silence.
    burst.extend_from_slice(b"GET /hea");
    let raw = raw_exchange(server.addr(), &burst);
    let frames = split_frames(&raw);
    assert_eq!(frames.len(), 3);
    assert!(frames.iter().all(|f| status_of(f) == 200));
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn slow_header_drip_on_a_reused_connection_times_out_with_408() {
    let server = small_server(); // read_timeout_ms = 400
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut residue = Vec::new();

    // One clean request proves the connection is established and kept.
    std::io::Write::write_all(&mut stream, HEALTHZ_KEEPALIVE).unwrap();
    let first = recv_one(&mut stream, &mut residue);
    assert_eq!(status_of(&first), 200);
    assert!(String::from_utf8_lossy(&first).contains("Connection: keep-alive"));

    // Now drip a few bytes of a second request and stall: the partial
    // read must trip the read deadline even on a warmed-up connection.
    std::io::Write::write_all(&mut stream, b"GET /he").unwrap();
    let mut out = residue;
    std::io::Read::read_to_end(&mut stream, &mut out).unwrap();
    assert_eq!(status_of(&out), 408);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn connection_survives_an_application_400_but_not_a_413() {
    let server = small_server();

    // An app-level 400 (well-framed request, rotten payload) must leave
    // the connection usable: HTTP framing was never in doubt.
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut residue = Vec::new();
    let bad_matrix = b"%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n";
    let req = format!(
        "POST /v1/recommend HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        bad_matrix.len()
    );
    std::io::Write::write_all(&mut stream, req.as_bytes()).unwrap();
    std::io::Write::write_all(&mut stream, bad_matrix).unwrap();
    let first = recv_one(&mut stream, &mut residue);
    assert_eq!(status_of(&first), 400);
    assert!(String::from_utf8_lossy(&first).contains("Connection: keep-alive"));
    std::io::Write::write_all(&mut stream, HEALTHZ_KEEPALIVE).unwrap();
    let second = recv_one(&mut stream, &mut residue);
    assert_eq!(
        status_of(&second),
        200,
        "connection must outlive an app 400"
    );

    // A 413, by contrast, is a framing-level rejection: the declared
    // body may still be in flight, so the server must hang up.
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut residue = Vec::new();
    std::io::Write::write_all(
        &mut stream,
        b"POST /v1/recommend HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n",
    )
    .unwrap();
    let frame = recv_one(&mut stream, &mut residue);
    assert_eq!(status_of(&frame), 413);
    assert!(String::from_utf8_lossy(&frame).contains("Connection: close"));
    let mut rest = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut rest).unwrap();
    assert!(rest.is_empty(), "nothing follows a 413 but EOF");

    assert_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_pipelined_backlog_is_bounded_by_keep_alive_max() {
    // A connection may not monopolize a shard forever: after
    // keep_alive_max_requests responses the server closes, and the
    // unserved tail of the backlog is discarded without a panic.
    let server = spawn(
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            keep_alive_max_requests: 64,
            ..ServerConfig::default()
        },
        AdvisorHandle::heuristic(),
    );
    let mut burst = Vec::new();
    for _ in 0..200 {
        burst.extend_from_slice(HEALTHZ_KEEPALIVE);
    }
    let raw = raw_exchange(server.addr(), &burst);
    let frames = split_frames(&raw);
    assert_eq!(frames.len(), 64, "exactly keep_alive_max_requests answers");
    assert!(frames.iter().all(|f| status_of(f) == 200));
    assert!(
        String::from_utf8_lossy(frames.last().unwrap()).contains("Connection: close"),
        "the final response must announce the hangup"
    );
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_headers_are_431() {
    let server = small_server();
    let mut req = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..2000 {
        req.extend_from_slice(format!("X-Padding-{i}: {}\r\n", "y".repeat(64)).as_bytes());
    }
    req.extend_from_slice(b"\r\n");
    let response = raw_exchange(server.addr(), &req);
    assert_eq!(status_of(&response), 431);
    assert_alive(&server);
    server.shutdown();
}
