//! Adversarial protocol tests against a live server: every malformed or
//! hostile input must produce a *typed* 4xx/5xx (or deliberate silence
//! for half-requests) and must never take a worker down — the final
//! health check in each test proves the server still answers afterwards.

#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use common::{body_of, raw_exchange, spawn, status_of};
use spmv_core::AdvisorHandle;
use spmv_serve::loadgen::http_roundtrip;
use spmv_serve::ServerConfig;

fn small_server() -> spmv_serve::Server {
    spawn(
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            max_body_bytes: 64 * 1024,
            read_timeout_ms: 400,
            ..ServerConfig::default()
        },
        AdvisorHandle::heuristic(),
    )
}

fn assert_alive(server: &spmv_serve::Server) {
    let (status, body) =
        http_roundtrip(&server.addr().to_string(), "GET", "/healthz", b"").expect("healthz");
    assert_eq!(status, 200, "server must stay healthy after abuse");
    assert!(String::from_utf8_lossy(&body).contains("\"status\":\"ok\""));
}

#[test]
fn truncated_request_line_gets_silence_not_a_crash() {
    let server = small_server();
    let response = raw_exchange(server.addr(), b"POST /v1/reco");
    assert!(
        response.is_empty(),
        "a half request deserves no response, got {:?}",
        String::from_utf8_lossy(&response)
    );
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn empty_connection_gets_silence() {
    let server = small_server();
    let response = raw_exchange(server.addr(), b"");
    assert!(response.is_empty());
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn non_numeric_content_length_is_400() {
    let server = small_server();
    let response = raw_exchange(
        server.addr(),
        b"POST /v1/recommend HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    );
    assert_eq!(status_of(&response), 400);
    assert!(String::from_utf8_lossy(&body_of(&response)).contains("bad_content_length"));
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn negative_content_length_is_400() {
    let server = small_server();
    let response = raw_exchange(
        server.addr(),
        b"POST /v1/recommend HTTP/1.1\r\nContent-Length: -20\r\n\r\n",
    );
    assert_eq!(status_of(&response), 400);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_declared_body_is_413_before_the_body_is_sent() {
    let server = small_server();
    // Declare far beyond max_body_bytes but send nothing after the
    // headers: the rejection must come from the declaration alone.
    let response = raw_exchange(
        server.addr(),
        b"POST /v1/recommend HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n",
    );
    assert_eq!(status_of(&response), 413);
    assert!(String::from_utf8_lossy(&body_of(&response)).contains("body_too_large"));
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn post_without_content_length_is_411() {
    let server = small_server();
    let response = raw_exchange(server.addr(), b"POST /v1/recommend HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&response), 411);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn chunked_transfer_encoding_is_501() {
    let server = small_server();
    let response = raw_exchange(
        server.addr(),
        b"POST /v1/recommend HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
    );
    assert_eq!(status_of(&response), 501);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn http2_preface_is_505() {
    let server = small_server();
    let response = raw_exchange(server.addr(), b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n");
    assert_eq!(status_of(&response), 505);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn premature_disconnect_mid_body_gets_silence() {
    let server = small_server();
    let response = raw_exchange(
        server.addr(),
        b"POST /v1/recommend HTTP/1.1\r\nContent-Length: 5000\r\n\r\nonly a little",
    );
    assert!(
        response.is_empty(),
        "nothing sensible can be said to a vanished client"
    );
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn stalled_client_is_timed_out_with_408() {
    let server = small_server(); // read_timeout_ms = 400
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    std::io::Write::write_all(&mut stream, b"GET /healthz HT").unwrap();
    // ...and stall without closing. The worker's socket timeout fires.
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut out = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut out).unwrap();
    assert_eq!(status_of(&out), 408);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn non_utf8_body_is_typed_400() {
    let server = small_server();
    // Invalid UTF-8 after an opening brace: the feature-request path must
    // reject it as a typed error, not panic in a string conversion.
    let mut req = b"POST /v1/recommend HTTP/1.1\r\nContent-Length: 5\r\n\r\n".to_vec();
    req.extend_from_slice(b"{\xff\xfe\xfd}");
    let response = raw_exchange(server.addr(), &req);
    assert_eq!(status_of(&response), 400);
    assert!(String::from_utf8_lossy(&body_of(&response)).contains("bad_features"));
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn unrecognized_body_is_typed_400() {
    let server = small_server();
    let (status, body) = http_roundtrip(
        &server.addr().to_string(),
        "POST",
        "/v1/recommend",
        b"this is neither a matrix nor features",
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("unrecognized_body"));
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn malformed_matrix_market_is_typed_400() {
    let server = small_server();
    let addr = server.addr().to_string();
    for body in [
        // Header promises 2 entries, delivers 1.
        &b"%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n"[..],
        // Out-of-bounds coordinate.
        &b"%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1.0\n"[..],
        // Not a number where a value belongs.
        &b"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 banana\n"[..],
    ] {
        let (status, response) = http_roundtrip(&addr, "POST", "/v1/recommend", body).unwrap();
        assert_eq!(status, 400, "body: {}", String::from_utf8_lossy(body));
        assert!(String::from_utf8_lossy(&response).contains("bad_matrix"));
    }
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn wrong_arity_feature_vector_is_typed_400() {
    let server = small_server();
    let (status, body) = http_roundtrip(
        &server.addr().to_string(),
        "POST",
        "/v1/recommend",
        b"{\"features\":[1,2,3]}",
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("expected exactly 17"));
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn non_finite_features_are_typed_400() {
    let server = small_server();
    // serde_json has no Infinity literal, so smuggle a huge exponent in:
    // 1e999 overflows to +inf on parse in permissive parsers or fails —
    // either way the server must answer 400, not 500.
    let (status, _body) = http_roundtrip(
        &server.addr().to_string(),
        "POST",
        "/v1/recommend",
        b"{\"features\":[1e999,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}",
    )
    .unwrap();
    assert_eq!(status, 400);
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn unknown_path_is_404_and_wrong_method_is_405() {
    let server = small_server();
    let addr = server.addr().to_string();
    let (status, _) = http_roundtrip(&addr, "GET", "/nope", b"").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_roundtrip(&addr, "DELETE", "/healthz", b"").unwrap();
    assert_eq!(status, 405);
    // Admin shutdown is not routed unless explicitly enabled.
    let (status, _) = http_roundtrip(&addr, "POST", "/admin/shutdown", b"").unwrap();
    assert_eq!(status, 404);
    assert!(!server.shutdown_requested());
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_headers_are_431() {
    let server = small_server();
    let mut req = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..2000 {
        req.extend_from_slice(format!("X-Padding-{i}: {}\r\n", "y".repeat(64)).as_bytes());
    }
    req.extend_from_slice(b"\r\n");
    let response = raw_exchange(server.addr(), &req);
    assert_eq!(status_of(&response), 431);
    assert_alive(&server);
    server.shutdown();
}
