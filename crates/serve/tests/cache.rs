//! Served-cache behavior and degraded-mode serving.
//!
//! The LRU mechanics themselves (eviction order, collision safety,
//! single flight) are unit-tested inside `spmv_serve::cache`; these
//! tests assert the *serving* contracts: a cache hit returns bytes
//! bit-identical to the cold miss, the hit actually happened (counters),
//! and a server booted on a corrupt artifact keeps answering from the
//! heuristic.

#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use std::sync::Mutex;

use common::spawn;
use spmv_core::AdvisorHandle;
use spmv_serve::loadgen::{banded_mm, feature_body, http_roundtrip};
use spmv_serve::ServerConfig;

/// Counter assertions read the process-global tracer; serialize the
/// tests that depend on exact deltas.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn counters() -> (u64, u64) {
    (
        spmv_observe::counter_value("serve.cache.hits"),
        spmv_observe::counter_value("serve.cache.misses"),
    )
}

#[test]
fn repeat_matrix_request_hits_and_is_bit_identical() {
    let _guard = COUNTER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    spmv_observe::enable();
    let server = spawn(ServerConfig::default(), AdvisorHandle::heuristic());
    let addr = server.addr().to_string();
    let body = banded_mm(64, 2);

    let (hits0, misses0) = counters();
    let (status_cold, cold) = http_roundtrip(&addr, "POST", "/v1/recommend", &body).unwrap();
    let (hits1, misses1) = counters();
    let (status_warm, warm) = http_roundtrip(&addr, "POST", "/v1/recommend", &body).unwrap();
    let (hits2, misses2) = counters();

    assert_eq!(status_cold, 200);
    assert_eq!(status_warm, 200);
    assert_eq!(cold, warm, "cache hit must be bit-identical to cold miss");
    assert_eq!(misses1 - misses0, 1, "first request is the one miss");
    assert_eq!(hits1 - hits0, 0);
    assert_eq!(hits2 - hits1, 1, "second request is served from cache");
    assert_eq!(misses2 - misses1, 0);
    server.shutdown();
}

#[test]
fn repeat_feature_request_hits_and_is_bit_identical() {
    let _guard = COUNTER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    spmv_observe::enable();
    let server = spawn(ServerConfig::default(), AdvisorHandle::heuristic());
    let addr = server.addr().to_string();
    let body = feature_body(99);

    let (hits0, _m) = counters();
    let (_s1, cold) = http_roundtrip(&addr, "POST", "/v1/recommend", &body).unwrap();
    let (_s2, warm) = http_roundtrip(&addr, "POST", "/v1/recommend", &body).unwrap();
    let (hits1, _m) = counters();
    assert_eq!(cold, warm);
    assert_eq!(hits1 - hits0, 1);
    server.shutdown();
}

#[test]
fn textually_different_feature_bodies_with_same_values_share_an_entry() {
    let _guard = COUNTER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    spmv_observe::enable();
    let server = spawn(ServerConfig::default(), AdvisorHandle::heuristic());
    let addr = server.addr().to_string();
    // Same 17 values, different whitespace: the key is the value bits,
    // not the body text.
    let a = b"{\"features\":[100,100,500,5,0.05,9,2,0,0,0,0,0,0,0,0,0,0]}".to_vec();
    let b =
        b"{ \"features\": [100, 100, 500, 5, 0.05, 9, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0] }".to_vec();
    let (hits0, _m) = counters();
    let (_s1, first) = http_roundtrip(&addr, "POST", "/v1/recommend", &a).unwrap();
    let (_s2, second) = http_roundtrip(&addr, "POST", "/v1/recommend", &b).unwrap();
    let (hits1, _m) = counters();
    assert_eq!(first, second);
    assert_eq!(hits1 - hits0, 1, "semantic duplicate must hit");
    server.shutdown();
}

#[test]
fn malformed_bodies_are_never_cached() {
    let _guard = COUNTER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    spmv_observe::enable();
    let server = spawn(ServerConfig::default(), AdvisorHandle::heuristic());
    let addr = server.addr().to_string();
    let body = b"%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n".to_vec();
    let (hits0, misses0) = counters();
    for _ in 0..3 {
        let (status, _b) = http_roundtrip(&addr, "POST", "/v1/recommend", &body).unwrap();
        assert_eq!(status, 400);
    }
    let (hits1, misses1) = counters();
    assert_eq!(hits1 - hits0, 0, "a 400 must never be served from cache");
    assert_eq!(misses1 - misses0, 3, "every malformed attempt re-parses");
    server.shutdown();
}

#[test]
fn zero_capacity_disables_caching_but_not_correctness() {
    let _guard = COUNTER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    spmv_observe::enable();
    let server = spawn(
        ServerConfig {
            cache_capacity: 0,
            ..ServerConfig::default()
        },
        AdvisorHandle::heuristic(),
    );
    let addr = server.addr().to_string();
    let body = banded_mm(48, 1);
    let (hits0, _m) = counters();
    let (_s1, first) = http_roundtrip(&addr, "POST", "/v1/recommend", &body).unwrap();
    let (_s2, second) = http_roundtrip(&addr, "POST", "/v1/recommend", &body).unwrap();
    let (hits1, _m) = counters();
    assert_eq!(first, second, "recompute must still be deterministic");
    assert_eq!(hits1 - hits0, 0, "capacity 0 means no hits, ever");
    server.shutdown();
}

#[test]
fn corrupt_artifact_boots_heuristic_and_serves() {
    let path = std::env::temp_dir().join(format!(
        "spmv_serve_corrupt_artifact_{}.json",
        std::process::id()
    ));
    std::fs::write(&path, b"{\"definitely\": \"not a model artifact\"").unwrap();
    let handle = AdvisorHandle::from_artifact(&path);
    assert_eq!(handle.mode(), "heuristic");
    assert!(handle.degraded_reason().is_some());

    let server = spawn(ServerConfig::default(), handle);
    let addr = server.addr().to_string();

    let (status, health) = http_roundtrip(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);
    let health = String::from_utf8_lossy(&health).to_string();
    assert!(health.contains("\"mode\":\"heuristic\""), "{health}");
    assert!(health.contains("\"model_version\":null"), "{health}");

    let (status, body) = http_roundtrip(&addr, "POST", "/v1/recommend", &banded_mm(64, 2)).unwrap();
    assert_eq!(status, 200);
    let body = String::from_utf8_lossy(&body).to_string();
    assert!(body.contains("\"source\":\"heuristic\""), "{body}");
    assert!(body.contains("\"predicted_times\":null"), "{body}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}
