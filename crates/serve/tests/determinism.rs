//! Scheduling invariance of the run manifest, against the real
//! `spmv-serve` binary.
//!
//! The deterministic section of the manifest (line 2 — the CI smoke job
//! extracts it with `sed -n 2p`) must be byte-identical for the same
//! request mix across the whole scheduling matrix: 1 worker or 4,
//! one-shot `Connection: close` clients or persistent pipelined
//! keep-alive clients. Counters record *work*, never scheduling — shard
//! count, connection reuse, and pipelining depth may only show up in the
//! timing section. This test lives in its own file so it gets its own
//! process — the tracer is process-global and the in-process server
//! tests mutate it.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use spmv_serve::loadgen;

struct ServerProc {
    child: Child,
    addr: String,
}

/// Boot the real binary on an ephemeral port and parse the one
/// `listening on HOST:PORT` line it prints once ready.
fn boot(workers: usize, trace_out: &PathBuf) -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_spmv-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
            "--queue-depth",
            "64",
            "--cache-capacity",
            "256",
            "--trace-out",
        ])
        .arg(trace_out)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn spmv-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("listening line has an address")
        .to_string();
    assert!(
        line.contains("listening on"),
        "unexpected boot line: {line:?}"
    );
    ServerProc { child, addr }
}

/// How the load generator talks to the server for one matrix cell.
#[derive(Clone, Copy)]
enum Transport {
    OneShot,
    /// Keep-alive connections pipelining this many requests per burst.
    Pipelined(usize),
}

/// Drive the scripted mix, request shutdown, and wait for a clean exit.
fn run_and_collect(workers: usize, transport: Transport, trace_out: &PathBuf) -> Vec<String> {
    let mut server = boot(workers, trace_out);
    loadgen::wait_ready(&server.addr, Duration::from_secs(10)).expect("server ready");

    let mix = loadgen::build_mix(64, 7);
    let report = match transport {
        Transport::OneShot => loadgen::run(&server.addr, &mix, 4, false),
        Transport::Pipelined(depth) => loadgen::run_persistent(&server.addr, &mix, 4, depth, false),
    };
    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "mix must be clean at {workers} workers; statuses: {:?}",
        report.statuses
    );

    let status = loadgen::send_shutdown(&server.addr).expect("shutdown accepted");
    assert_eq!(status, 200);
    let exit = server.child.wait().expect("server exits");
    assert!(exit.success(), "orderly shutdown must exit 0, got {exit:?}");

    let manifest = std::fs::read_to_string(trace_out).expect("manifest written");
    manifest.lines().map(str::to_string).collect()
}

#[test]
fn deterministic_manifest_section_is_scheduling_invariant() {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();

    // The full matrix the acceptance contract names: {1,4} workers ×
    // {one-shot, persistent}. The persistent cells also vary pipeline
    // depth so reuse and batching both get a chance to leak.
    let cells = [
        ("w1_oneshot", 1, Transport::OneShot),
        ("w4_oneshot", 4, Transport::OneShot),
        ("w1_pipelined", 1, Transport::Pipelined(4)),
        ("w4_pipelined", 4, Transport::Pipelined(16)),
    ];
    let mut paths = Vec::new();
    let mut manifests = Vec::new();
    for (tag, workers, transport) in cells {
        let path = tmp.join(format!("spmv_serve_det_{tag}_{pid}.json"));
        manifests.push((tag, run_and_collect(workers, transport, &path)));
        paths.push(path);
    }

    // Manifest layout contract (what the CI smoke job's `sed -n 2p`
    // relies on): line 2 is the complete deterministic section on one
    // line; timing follows and may span several lines.
    let (_, baseline) = &manifests[0];
    assert!(
        baseline[1].starts_with("\"deterministic\""),
        "line 2 must be the deterministic section: {}",
        baseline[1]
    );
    for (tag, lines) in &manifests[1..] {
        assert_eq!(
            &baseline[1], &lines[1],
            "deterministic section diverged in cell {tag}"
        );
    }

    // The section carries real serving state, not an empty shell.
    for key in [
        "serve.requests",
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.responses.2xx",
        "serve.responses.4xx",
    ] {
        assert!(
            baseline[1].contains(key),
            "deterministic section missing {key}: {}",
            baseline[1]
        );
    }

    // Scheduling shows up only in timing: worker counts differ there,
    // and connection reuse is visible for the persistent cells.
    let timing = |idx: usize| manifests[idx].1[2..].join("\n");
    assert!(timing(0).contains("\"workers\":\"1\""), "{}", timing(0));
    assert!(timing(1).contains("\"workers\":\"4\""), "{}", timing(1));
    for idx in [0, 1, 2, 3] {
        assert!(
            timing(idx).contains("serve.conns.accepted"),
            "{}",
            timing(idx)
        );
    }
    // One-shot clients never reuse; pipelined clients must.
    assert!(
        timing(0).contains("\"serve.requests.reused_conn\":\"0\""),
        "{}",
        timing(0)
    );
    assert!(
        !timing(2).contains("\"serve.requests.reused_conn\":\"0\""),
        "persistent cell must reuse connections: {}",
        timing(2)
    );

    for path in paths {
        std::fs::remove_file(&path).ok();
    }
}
