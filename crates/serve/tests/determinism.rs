//! Worker-count invariance of the run manifest, against the real
//! `spmv-serve` binary.
//!
//! The deterministic section of the manifest (line 2 — the CI smoke job
//! extracts it with `sed -n 2p`) must be byte-identical for the same
//! request mix whether the server runs 1 worker or 4: counters record
//! *work*, never scheduling. This test lives in its own file so it gets
//! its own process — the tracer is process-global and the in-process
//! server tests mutate it.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use spmv_serve::loadgen;

struct ServerProc {
    child: Child,
    addr: String,
}

/// Boot the real binary on an ephemeral port and parse the one
/// `listening on HOST:PORT` line it prints once ready.
fn boot(workers: usize, trace_out: &PathBuf) -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_spmv-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
            "--queue-depth",
            "64",
            "--cache-capacity",
            "256",
            "--trace-out",
        ])
        .arg(trace_out)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn spmv-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("listening line has an address")
        .to_string();
    assert!(
        line.contains("listening on"),
        "unexpected boot line: {line:?}"
    );
    ServerProc { child, addr }
}

/// Drive the scripted mix, request shutdown, and wait for a clean exit.
fn run_and_collect(workers: usize, trace_out: &PathBuf) -> Vec<String> {
    let mut server = boot(workers, trace_out);
    loadgen::wait_ready(&server.addr, Duration::from_secs(10)).expect("server ready");

    let mix = loadgen::build_mix(64, 7);
    let report = loadgen::run(&server.addr, &mix, 4, false);
    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "mix must be clean at {workers} workers; statuses: {:?}",
        report.statuses
    );

    let status = loadgen::send_shutdown(&server.addr).expect("shutdown accepted");
    assert_eq!(status, 200);
    let exit = server.child.wait().expect("server exits");
    assert!(exit.success(), "orderly shutdown must exit 0, got {exit:?}");

    let manifest = std::fs::read_to_string(trace_out).expect("manifest written");
    manifest.lines().map(str::to_string).collect()
}

#[test]
fn deterministic_manifest_section_is_worker_count_invariant() {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let path_w1 = tmp.join(format!("spmv_serve_det_w1_{pid}.json"));
    let path_w4 = tmp.join(format!("spmv_serve_det_w4_{pid}.json"));

    let lines_w1 = run_and_collect(1, &path_w1);
    let lines_w4 = run_and_collect(4, &path_w4);

    // Manifest layout contract (what the CI smoke job's `sed -n 2p`
    // relies on): line 2 is the complete deterministic section on one
    // line; timing follows and may span several lines.
    assert!(
        lines_w1[1].starts_with("\"deterministic\""),
        "line 2 must be the deterministic section: {}",
        lines_w1[1]
    );
    assert_eq!(
        lines_w1[1], lines_w4[1],
        "deterministic section must not depend on worker count"
    );

    // The section carries real serving state, not an empty shell.
    for key in [
        "serve.requests",
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.responses.2xx",
        "serve.responses.4xx",
    ] {
        assert!(
            lines_w1[1].contains(key),
            "deterministic section missing {key}: {}",
            lines_w1[1]
        );
    }
    // Scheduling shows up only in timing: worker counts differ there.
    let timing_w1 = lines_w1[2..].join("\n");
    let timing_w4 = lines_w4[2..].join("\n");
    assert!(timing_w1.contains("\"workers\":\"1\""), "{timing_w1}");
    assert!(timing_w4.contains("\"workers\":\"4\""), "{timing_w4}");

    std::fs::remove_file(&path_w1).ok();
    std::fs::remove_file(&path_w4).ok();
}
