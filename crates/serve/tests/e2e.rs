//! End-to-end acceptance: a model-backed server on an ephemeral port
//! under concurrent mixed load (MatrixMarket bodies, feature vectors,
//! malformed payloads, cache-hitting repeats), verifying that
//!
//! - every well-formed response is byte-identical to what the shared
//!   `AdvisorHandle` (the `spmv-advisor --json` code path) produces,
//! - malformed payloads get typed 4xx answers,
//! - a saturated queue sheds with `503` while every admitted request
//!   still completes — nothing is dropped.

#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use std::sync::Arc;

use common::{spawn, tiny_handle};
use spmv_core::AdvisorHandle;
use spmv_features::FeatureVector;
use spmv_serve::loadgen::{self, banded_mm, ExpectClass};
use spmv_serve::ServerConfig;

/// Expected 200-body for a MatrixMarket request, through the same code
/// path the one-shot CLI's `--json` uses.
fn expected_matrix_json(reference: &AdvisorHandle, body: &[u8]) -> Vec<u8> {
    let csr = spmv_matrix::mm::read_matrix_market::<f64, _>(body)
        .expect("mix emits valid matrices")
        .to_csr();
    let mut bytes = reference.recommend_csr(&csr).to_json().into_bytes();
    bytes.push(b'\n');
    bytes
}

/// Expected 200-body for a feature-vector request.
fn expected_feature_json(reference: &AdvisorHandle, body: &[u8]) -> Vec<u8> {
    let text = std::str::from_utf8(body).unwrap();
    let inner = text
        .trim()
        .trim_start_matches("{\"features\":[")
        .trim_end_matches("]}");
    let values: Vec<f64> = inner
        .split(',')
        .map(|v| v.trim().parse().unwrap())
        .collect();
    let fv = FeatureVector::from_slice(&values).expect("17 features");
    let mut bytes = reference.recommend_features(&fv).to_json().into_bytes();
    bytes.push(b'\n');
    bytes
}

#[test]
fn concurrent_mixed_load_matches_the_cli_surface() {
    // Counters are recorded only while the process-global tracer is on
    // (the spmv-serve binary enables it at boot; embedded servers opt in).
    spmv_observe::enable();
    let server = spawn(
        ServerConfig {
            workers: 4,
            queue_depth: 128,
            cache_capacity: 256,
            ..ServerConfig::default()
        },
        tiny_handle(),
    );
    let addr = server.addr().to_string();
    let reference = tiny_handle();

    let mix = loadgen::build_mix(72, 7);
    assert!(mix.len() >= 64, "acceptance requires >= 64 mixed requests");
    let report = loadgen::run(&addr, &mix, 8, false);

    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "every request must land in its expected status class; statuses: {:?}",
        report.statuses
    );
    assert_eq!(report.outcomes.len(), mix.len());

    // Byte-level agreement with the shared serving surface, for every
    // single well-formed recommendation in the mix (including the
    // cache-served repeats — a hit must be indistinguishable).
    let mut checked_matrix = 0;
    let mut checked_features = 0;
    for outcome in &report.outcomes {
        let req = &mix[outcome.index];
        if req.expect != ExpectClass::Ok || req.target != "/v1/recommend" {
            continue;
        }
        let body = &req.body;
        if body.starts_with(b"%%MatrixMarket") {
            assert_eq!(
                outcome.body,
                expected_matrix_json(&reference, body),
                "server vs CLI mismatch on {}",
                req.name
            );
            checked_matrix += 1;
        } else {
            assert_eq!(
                outcome.body,
                expected_feature_json(&reference, body),
                "server vs CLI mismatch on {}",
                req.name
            );
            checked_features += 1;
        }
    }
    assert!(checked_matrix >= 20, "matrix coverage: {checked_matrix}");
    assert!(
        checked_features >= 9,
        "feature coverage: {checked_features}"
    );

    // Model mode end to end: responses name the model source and carry
    // predicted times.
    let sample = report
        .outcomes
        .iter()
        .find(|o| mix[o.index].name.starts_with("banded"))
        .unwrap();
    let text = String::from_utf8_lossy(&sample.body).to_string();
    assert!(text.contains("\"source\":\"model\""), "{text}");
    assert!(text.contains("\"predicted_times\":[{"), "{text}");

    // The repeats in the mix must have been served from cache.
    let (_s, statz) = loadgen::http_roundtrip(&addr, "GET", "/statz", b"").unwrap();
    let statz = String::from_utf8_lossy(&statz).to_string();
    let hits = statz
        .split("\"serve.cache.hits\":")
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse::<u64>()
                .ok()
        })
        .unwrap_or(0);
    assert!(
        hits >= 7,
        "expected cache hits from repeats, statz: {statz}"
    );

    server.shutdown();
}

#[test]
fn saturated_queue_sheds_503_without_dropping_admitted_work() {
    // One slow worker, a two-slot queue: with 12 simultaneous one-shot
    // clients the acceptor must reject the overflow with 503 and every
    // admitted request must still complete with 200. Nothing may vanish
    // (status 0 = no response at all).
    let server = spawn(
        ServerConfig {
            workers: 1,
            queue_depth: 2,
            cache_capacity: 0,
            handler_delay_ms: 150,
            read_timeout_ms: 30_000,
            ..ServerConfig::default()
        },
        AdvisorHandle::heuristic(),
    );
    let addr = Arc::new(server.addr().to_string());
    let body = Arc::new(banded_mm(48, 1));

    let clients: Vec<_> = (0..12)
        .map(|_| {
            let addr = Arc::clone(&addr);
            let body = Arc::clone(&body);
            std::thread::spawn(move || {
                loadgen::http_roundtrip(&addr, "POST", "/v1/recommend", &body)
                    .unwrap_or((0, Vec::new()))
            })
        })
        .collect();
    let results: Vec<(u16, Vec<u8>)> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    let ok = results.iter().filter(|(s, _)| *s == 200).count();
    let shed = results.iter().filter(|(s, _)| *s == 503).count();
    let lost = results.iter().filter(|(s, _)| *s == 0).count();
    assert_eq!(lost, 0, "every connection must get a response");
    assert_eq!(ok + shed, results.len());
    assert!(shed >= 1, "2-deep queue + 12 clients must shed something");
    assert!(
        ok >= 3,
        "in-flight and queued work must complete despite overload (ok={ok})"
    );
    // Shed responses must carry Retry-After semantics in the body.
    let shed_body = results
        .iter()
        .find(|(s, _)| *s == 503)
        .map(|(_, b)| String::from_utf8_lossy(b).to_string())
        .unwrap();
    assert!(shed_body.contains("overloaded"), "{shed_body}");

    // After the storm: still healthy, still exact.
    let (status, _h) = loadgen::http_roundtrip(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn graceful_shutdown_completes_queued_requests() {
    // Admitted work survives shutdown: queue several slow requests, call
    // shutdown while they are pending, and require every one to finish.
    let server = spawn(
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            handler_delay_ms: 80,
            ..ServerConfig::default()
        },
        AdvisorHandle::heuristic(),
    );
    let addr = Arc::new(server.addr().to_string());
    let clients: Vec<_> = (0..6)
        .map(|i| {
            let addr = Arc::clone(&addr);
            std::thread::spawn(move || {
                let body = banded_mm(40 + i, 1);
                loadgen::http_roundtrip(&addr, "POST", "/v1/recommend", &body)
                    .map(|(status, _)| status)
                    .unwrap_or(0)
            })
        })
        .collect();
    // Give the clients a moment to be accepted, then shut down under them.
    std::thread::sleep(std::time::Duration::from_millis(40));
    server.shutdown();
    let statuses: Vec<u16> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert!(
        statuses.iter().all(|s| *s == 200),
        "admitted requests must complete across shutdown: {statuses:?}"
    );
}
