//! Dataset containers, splits, and cross-validation folds.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Row-major dense feature matrix (samples x features).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
}

impl FeatureMatrix {
    /// Build from per-sample rows; all rows must share one length.
    ///
    /// # Panics
    /// If rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "inconsistent row lengths");
            data.extend_from_slice(r);
        }
        Self {
            data,
            n_rows,
            n_cols,
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != n_rows * n_cols`.
    pub fn from_flat(data: Vec<f64>, n_rows: usize, n_cols: usize) -> Self {
        assert_eq!(data.len(), n_rows * n_cols, "flat buffer size mismatch");
        Self {
            data,
            n_rows,
            n_cols,
        }
    }

    /// Number of samples.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// One sample's feature row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// One cell.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n_cols + j]
    }

    /// Mutable cell access (used by scalers).
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.data[i * self.n_cols + j]
    }

    /// New matrix containing the given sample rows, in order.
    pub fn select_rows(&self, idx: &[usize]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(idx.len() * self.n_cols);
        for &i in idx {
            data.extend_from_slice(self.row(i));
        }
        FeatureMatrix {
            data,
            n_rows: idx.len(),
            n_cols: self.n_cols,
        }
    }

    /// New matrix containing the given feature columns, in order.
    pub fn select_cols(&self, cols: &[usize]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(self.n_rows * cols.len());
        for i in 0..self.n_rows {
            let row = self.row(i);
            for &c in cols {
                data.push(row[c]);
            }
        }
        FeatureMatrix {
            data,
            n_rows: self.n_rows,
            n_cols: cols.len(),
        }
    }
}

/// Index split into train and test parts.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Training sample indices.
    pub train: Vec<usize>,
    /// Held-out sample indices.
    pub test: Vec<usize>,
}

/// Shuffled train/test split (the paper uses 80/20).
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> Split {
    assert!((0.0..1.0).contains(&test_fraction), "fraction in [0,1)");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    Split { train, test }
}

/// Stratified train/test split: each class keeps the same test fraction.
pub fn stratified_split(labels: &[usize], test_fraction: f64, seed: u64) -> Split {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for c in 0..n_classes {
        let mut members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == c).collect();
        members.shuffle(&mut rng);
        let n_test = ((members.len() as f64) * test_fraction).round() as usize;
        test.extend_from_slice(&members[..n_test]);
        train.extend_from_slice(&members[n_test..]);
    }
    train.sort_unstable();
    test.sort_unstable();
    Split { train, test }
}

/// `k`-fold cross-validation splits over `n` samples.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<Split> {
    assert!(k >= 2, "need at least 2 folds");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    (0..k)
        .map(|f| {
            let lo = n * f / k;
            let hi = n * (f + 1) / k;
            let test = idx[lo..hi].to_vec();
            let mut train = Vec::with_capacity(n - test.len());
            train.extend_from_slice(&idx[..lo]);
            train.extend_from_slice(&idx[hi..]);
            Split { train, test }
        })
        .collect()
}

/// Select elements of `values` at `idx`.
pub fn gather<T: Copy>(values: &[T], idx: &[usize]) -> Vec<T> {
    idx.iter().map(|&i| values[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shapes_and_access() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!((m.n_rows(), m.n_cols()), (3, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(2, 1), 6.0);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let r = m.select_rows(&[1, 0, 1]);
        assert_eq!(r.n_rows(), 3);
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        let c = m.select_cols(&[2, 0]);
        assert_eq!(c.row(1), &[6.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn ragged_rows_rejected() {
        FeatureMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn split_is_partition() {
        let s = train_test_split(100, 0.2, 7);
        assert_eq!(s.test.len(), 20);
        assert_eq!(s.train.len(), 80);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.3, 1), train_test_split(50, 0.3, 1));
        assert_ne!(train_test_split(50, 0.3, 1), train_test_split(50, 0.3, 2));
    }

    #[test]
    fn stratified_preserves_class_ratios() {
        // 80 of class 0, 20 of class 1.
        let labels: Vec<usize> = (0..100).map(|i| usize::from(i >= 80)).collect();
        let s = stratified_split(&labels, 0.25, 3);
        let test_c1 = s.test.iter().filter(|&&i| labels[i] == 1).count();
        assert_eq!(test_c1, 5);
        assert_eq!(s.test.len(), 25);
    }

    #[test]
    fn kfold_covers_everything_once() {
        let folds = kfold(23, 5, 11);
        assert_eq!(folds.len(), 5);
        let mut seen = [0usize; 23];
        for f in &folds {
            for &i in &f.test {
                seen[i] += 1;
            }
            assert_eq!(f.train.len() + f.test.len(), 23);
            // No overlap between train and test.
            for &i in &f.test {
                assert!(!f.train.contains(&i));
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each sample tested exactly once"
        );
    }

    #[test]
    fn gather_reorders() {
        assert_eq!(gather(&[10, 20, 30], &[2, 0]), vec![30, 10]);
    }
}
