//! ε-insensitive support vector regression (SVR) with an RBF kernel —
//! the second regressor of Benatia et al.'s performance-modeling study
//! (paper §VII: "proposed to use multi-layer perceptron (MLP) and support
//! vector regression (SVR) to predict the performance").
//!
//! Trained by a SMO-style coordinate-ascent on the dual with paired
//! variables `(alpha_i - alpha_i*)` folded into one signed coefficient
//! `beta_i in [-C, C]` — the standard simplification for ε-SVR.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::data::FeatureMatrix;
use crate::model::Regressor;

/// SVR hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvrParams {
    /// Box constraint on the signed dual coefficients.
    pub c: f64,
    /// RBF kernel width.
    pub gamma: f64,
    /// Width of the ε-insensitive tube.
    pub epsilon: f64,
    /// Convergence tolerance on coefficient updates.
    pub tol: f64,
    /// Maximum optimization sweeps.
    pub max_iters: usize,
    /// Partner-choice RNG seed.
    pub seed: u64,
}

impl Default for SvrParams {
    fn default() -> Self {
        Self {
            c: 100.0,
            gamma: 0.1,
            epsilon: 0.05,
            tol: 1e-4,
            max_iters: 300,
            seed: 0,
        }
    }
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

/// RBF ε-SVR regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvrRegressor {
    /// Hyper-parameters.
    pub params: SvrParams,
    support: Vec<Vec<f64>>,
    betas: Vec<f64>,
    bias: f64,
    /// Target standardization (SVR geometry is scale-sensitive).
    y_mean: f64,
    y_std: f64,
}

impl SvrRegressor {
    /// New regressor with the given parameters.
    pub fn new(params: SvrParams) -> Self {
        Self {
            params,
            support: Vec::new(),
            betas: Vec::new(),
            bias: 0.0,
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// Number of support vectors retained after training.
    pub fn n_support_vectors(&self) -> usize {
        self.support.len()
    }

    fn raw_predict(&self, row: &[f64]) -> f64 {
        self.support
            .iter()
            .zip(&self.betas)
            .map(|(sv, b)| b * rbf(sv, row, self.params.gamma))
            .sum::<f64>()
            + self.bias
    }
}

impl Regressor for SvrRegressor {
    fn fit(&mut self, x: &FeatureMatrix, y: &[f64]) {
        assert_eq!(x.n_rows(), y.len());
        let n = x.n_rows();
        self.support.clear();
        self.betas.clear();
        self.bias = 0.0;
        if n == 0 {
            return;
        }
        // Standardize targets.
        self.y_mean = y.iter().sum::<f64>() / n as f64;
        let var = y.iter().map(|v| (v - self.y_mean).powi(2)).sum::<f64>() / n as f64;
        self.y_std = var.sqrt().max(1e-9);
        let yy: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_std).collect();

        // Precompute the kernel.
        let mut kernel = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let k = rbf(x.row(i), x.row(j), self.params.gamma);
                kernel[i * n + j] = k;
                kernel[j * n + i] = k;
            }
        }

        let p = self.params;
        let mut beta = vec![0.0f64; n];
        let mut bias = 0.0f64;
        // f(i) without bias.
        let f = |beta: &[f64], i: usize| -> f64 {
            let mut s = 0.0;
            for j in 0..n {
                if beta[j] != 0.0 {
                    s += beta[j] * kernel[j * n + i];
                }
            }
            s
        };
        let mut rng = ChaCha8Rng::seed_from_u64(p.seed);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..p.max_iters {
            order.shuffle(&mut rng);
            let mut max_delta = 0.0f64;
            for &i in &order {
                // Coordinate-wise update: minimize the dual wrt beta_i with
                // the ε-insensitive subgradient (prox step on beta_i).
                let err = f(&beta, i) + bias - yy[i];
                let kii = kernel[i * n + i].max(1e-12);
                // Subgradient of eps-insensitive loss wrt beta_i.
                let raw = beta[i]
                    - (err - p.epsilon * err.signum() * f64::from(err.abs() > p.epsilon)) / kii;
                let candidate = if err.abs() <= p.epsilon {
                    // Inside the tube: shrink toward zero.
                    beta[i] * 0.9
                } else {
                    raw
                };
                let new = candidate.clamp(-p.c, p.c);
                let delta = new - beta[i];
                if delta.abs() > 1e-12 {
                    beta[i] = new;
                    // Keep the bias as the running mean residual.
                    bias -= delta * kernel[i * n + i] / n as f64;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            // Recentre the bias on the current residuals.
            let mean_err: f64 = (0..n).map(|i| yy[i] - f(&beta, i)).sum::<f64>() / n as f64;
            bias = mean_err;
            if max_delta < p.tol {
                break;
            }
        }

        for (i, &b) in beta.iter().enumerate() {
            if b.abs() > 1e-9 {
                self.support.push(x.row(i).to_vec());
                self.betas.push(b);
            }
        }
        self.bias = bias;
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        self.raw_predict(row) * self.y_std + self.y_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_data() -> (FeatureMatrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0]).sin() * 3.0 + 5.0).collect();
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn svr_fits_smooth_function() {
        let (x, y) = wave_data();
        let mut m = SvrRegressor::new(SvrParams {
            gamma: 1.0,
            epsilon: 0.02,
            ..SvrParams::default()
        });
        m.fit(&x, &y);
        let mae: f64 = (0..x.n_rows())
            .map(|i| (m.predict_one(x.row(i)) - y[i]).abs())
            .sum::<f64>()
            / x.n_rows() as f64;
        assert!(mae < 0.5, "mae = {mae}");
        assert!(m.n_support_vectors() > 0);
    }

    #[test]
    fn svr_interpolates_between_samples() {
        let (x, y) = wave_data();
        let mut m = SvrRegressor::new(SvrParams {
            gamma: 1.0,
            epsilon: 0.02,
            ..SvrParams::default()
        });
        m.fit(&x, &y);
        // Midpoint between samples 20 and 21.
        let p = m.predict_one(&[2.05]);
        let expect = (2.05f64).sin() * 3.0 + 5.0;
        assert!((p - expect).abs() < 0.6, "{p} vs {expect}");
    }

    #[test]
    fn svr_handles_constant_targets() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![7.5; 20];
        let x = FeatureMatrix::from_rows(&rows);
        let mut m = SvrRegressor::new(SvrParams::default());
        m.fit(&x, &y);
        assert!((m.predict_one(&[3.0]) - 7.5).abs() < 0.5);
    }

    #[test]
    fn svr_is_deterministic() {
        let (x, y) = wave_data();
        let mut a = SvrRegressor::new(SvrParams::default());
        a.fit(&x, &y);
        let mut b = SvrRegressor::new(SvrParams::default());
        b.fit(&x, &y);
        assert_eq!(a.predict_one(&[1.0]), b.predict_one(&[1.0]));
    }

    #[test]
    fn empty_fit_is_safe() {
        let x = FeatureMatrix::from_rows(&[]);
        let mut m = SvrRegressor::new(SvrParams::default());
        m.fit(&x, &[]);
        assert_eq!(m.predict_one(&[1.0]), 0.0);
        assert_eq!(m.n_support_vectors(), 0);
    }
}
