//! Evaluation metrics: classification accuracy/confusion, the paper's
//! relative mean error (RME) for performance modeling, and the slowdown
//! statistics of Tables XI-XIII.

/// Fraction of predictions equal to the truth.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(truth).filter(|(a, b)| a == b).count();
    hits as f64 / pred.len() as f64
}

/// Confusion matrix: `m[truth][pred]` counts.
pub fn confusion_matrix(pred: &[usize], truth: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(pred.len(), truth.len());
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        m[t][p] += 1;
    }
    m
}

/// Relative mean error (paper §VI):
/// `RME = (1/n) * sum |pred_i - measured_i| / measured_i`.
pub fn relative_mean_error(pred: &[f64], measured: &[f64]) -> f64 {
    assert_eq!(pred.len(), measured.len());
    if pred.is_empty() {
        return 0.0;
    }
    let sum: f64 = pred
        .iter()
        .zip(measured)
        .map(|(&p, &m)| (p - m).abs() / m.abs().max(f64::MIN_POSITIVE))
        .sum();
    sum / pred.len() as f64
}

/// Slowdown of choosing format with time `chosen` instead of `best`
/// (1.0 = no slowdown).
pub fn slowdown(chosen_time: f64, best_time: f64) -> f64 {
    if best_time <= 0.0 {
        1.0
    } else {
        (chosen_time / best_time).max(1.0)
    }
}

/// The slowdown histogram of Tables XI-XIII: for each test sample, compare
/// the predicted format's time with the true best time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlowdownTable {
    /// Predicted format was the best (no slowdown).
    pub none: usize,
    /// Any slowdown at all (> 1x; cumulative over the next columns).
    pub above_1x: usize,
    /// Slowdown >= 1.2x.
    pub above_1_2x: usize,
    /// Slowdown >= 1.5x.
    pub above_1_5x: usize,
    /// Slowdown >= 2.0x.
    pub above_2x: usize,
}

impl SlowdownTable {
    /// Tally slowdowns from per-sample (chosen, best) times. A sample whose
    /// chosen time is within `tie_eps` of the best counts as "no slowdown"
    /// (measurement noise makes exact ties meaningless).
    pub fn tally(pairs: &[(f64, f64)], tie_eps: f64) -> SlowdownTable {
        let mut t = SlowdownTable::default();
        for &(chosen, best) in pairs {
            let s = slowdown(chosen, best);
            if s <= 1.0 + tie_eps {
                t.none += 1;
            } else {
                t.above_1x += 1;
                if s >= 1.2 {
                    t.above_1_2x += 1;
                }
                if s >= 1.5 {
                    t.above_1_5x += 1;
                }
                if s >= 2.0 {
                    t.above_2x += 1;
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[5], &[5]), 1.0);
    }

    #[test]
    fn confusion_counts() {
        let m = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1);
        assert_eq!(m[2][2], 1);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn rme_matches_hand_computation() {
        // |1-2|/2 + |3-3|/3 = 0.5 -> /2 = 0.25
        let r = relative_mean_error(&[1.0, 3.0], &[2.0, 3.0]);
        assert!((r - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rme_perfect_prediction_is_zero() {
        assert_eq!(relative_mean_error(&[4.0, 5.0], &[4.0, 5.0]), 0.0);
    }

    #[test]
    fn slowdown_floors_at_one() {
        assert_eq!(slowdown(0.5, 1.0), 1.0); // chosen faster than "best" (noise)
        assert_eq!(slowdown(2.0, 1.0), 2.0);
        assert_eq!(slowdown(1.0, 0.0), 1.0);
    }

    #[test]
    fn slowdown_table_buckets_are_cumulative() {
        let pairs = [
            (1.0, 1.0), // none
            (1.1, 1.0), // >1x
            (1.3, 1.0), // >1x, >=1.2
            (1.7, 1.0), // >1x, >=1.2, >=1.5
            (2.5, 1.0), // all buckets
        ];
        let t = SlowdownTable::tally(&pairs, 1e-9);
        assert_eq!(t.none, 1);
        assert_eq!(t.above_1x, 4);
        assert_eq!(t.above_1_2x, 3);
        assert_eq!(t.above_1_5x, 2);
        assert_eq!(t.above_2x, 1);
    }

    #[test]
    fn slowdown_table_tie_epsilon() {
        let pairs = [(1.004, 1.0)];
        assert_eq!(SlowdownTable::tally(&pairs, 0.01).none, 1);
        assert_eq!(SlowdownTable::tally(&pairs, 1e-6).above_1x, 1);
    }
}
