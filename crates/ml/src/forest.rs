//! Random forest — the third ensemble family alongside XGBoost and MLP
//! ensembles ("we explore a set of base and ensemble ML algorithms",
//! paper §I-A). Bagged CART trees over bootstrap samples with per-tree
//! feature subsampling, majority/average vote.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::data::FeatureMatrix;
use crate::model::{Classifier, Regressor};
use crate::tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth parameters.
    pub tree: TreeParams,
    /// Features sampled per tree (0 = sqrt(n_features), the usual default).
    pub max_features: usize,
    /// Bootstrap sample size as a fraction of the training set.
    pub sample_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            n_trees: 60,
            tree: TreeParams {
                max_depth: 16,
                min_samples_split: 2,
                min_samples_leaf: 1,
            },
            max_features: 0,
            sample_fraction: 1.0,
            seed: 0,
        }
    }
}

fn resolve_max_features(requested: usize, n_features: usize) -> usize {
    if requested == 0 {
        ((n_features as f64).sqrt().round() as usize).clamp(1, n_features)
    } else {
        requested.clamp(1, n_features)
    }
}

/// One bagged member: the feature subset it saw plus its tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Member<M> {
    features: Vec<usize>,
    tree: M,
}

fn bootstrap<R: Rng>(n: usize, fraction: f64, rng: &mut R) -> Vec<usize> {
    let k = ((n as f64 * fraction).round() as usize).max(1);
    (0..k).map(|_| rng.gen_range(0..n)).collect()
}

fn sample_features<R: Rng>(n_features: usize, k: usize, rng: &mut R) -> Vec<usize> {
    // Partial Fisher-Yates over the feature indices.
    let mut idx: Vec<usize> = (0..n_features).collect();
    for i in 0..k.min(n_features) {
        let j = rng.gen_range(i..n_features);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Random-forest classifier (majority vote over bagged CART trees).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestClassifier {
    /// Hyper-parameters.
    pub params: ForestParams,
    members: Vec<Member<DecisionTreeClassifier>>,
    n_classes: usize,
}

impl RandomForestClassifier {
    /// New forest with the given parameters.
    pub fn new(params: ForestParams) -> Self {
        Self {
            params,
            members: Vec::new(),
            n_classes: 0,
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.members.len()
    }
}

impl Classifier for RandomForestClassifier {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize], n_classes: usize) {
        assert_eq!(x.n_rows(), y.len());
        self.n_classes = n_classes;
        self.members.clear();
        if x.n_rows() == 0 {
            return;
        }
        let k = resolve_max_features(self.params.max_features, x.n_cols());
        let mut rng = ChaCha8Rng::seed_from_u64(self.params.seed);
        for _ in 0..self.params.n_trees {
            let rows = bootstrap(x.n_rows(), self.params.sample_fraction, &mut rng);
            let features = sample_features(x.n_cols(), k, &mut rng);
            let sub = x.select_rows(&rows).select_cols(&features);
            let sub_y: Vec<usize> = rows.iter().map(|&i| y[i]).collect();
            let mut tree = DecisionTreeClassifier::new(self.params.tree);
            tree.fit(&sub, &sub_y, n_classes);
            self.members.push(Member { features, tree });
        }
    }

    fn predict_one(&self, row: &[f64]) -> usize {
        let p = self.predict_proba_one(row, self.n_classes.max(1));
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn predict_proba_one(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let mut acc = vec![0.0; n_classes];
        for m in &self.members {
            let sub: Vec<f64> = m.features.iter().map(|&f| row[f]).collect();
            for (a, p) in acc
                .iter_mut()
                .zip(m.tree.predict_proba_one(&sub, n_classes))
            {
                *a += p;
            }
        }
        let k = self.members.len().max(1) as f64;
        for a in &mut acc {
            *a /= k;
        }
        acc
    }
}

/// Random-forest regressor (averaged bagged CART regressors).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestRegressor {
    /// Hyper-parameters.
    pub params: ForestParams,
    members: Vec<Member<DecisionTreeRegressor>>,
}

impl RandomForestRegressor {
    /// New forest with the given parameters.
    pub fn new(params: ForestParams) -> Self {
        Self {
            params,
            members: Vec::new(),
        }
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, x: &FeatureMatrix, y: &[f64]) {
        assert_eq!(x.n_rows(), y.len());
        self.members.clear();
        if x.n_rows() == 0 {
            return;
        }
        let k = resolve_max_features(self.params.max_features, x.n_cols());
        let mut rng = ChaCha8Rng::seed_from_u64(self.params.seed ^ 0xf0f0);
        for _ in 0..self.params.n_trees {
            let rows = bootstrap(x.n_rows(), self.params.sample_fraction, &mut rng);
            let features = sample_features(x.n_cols(), k, &mut rng);
            let sub = x.select_rows(&rows).select_cols(&features);
            let sub_y: Vec<f64> = rows.iter().map(|&i| y[i]).collect();
            let mut tree = DecisionTreeRegressor::new(self.params.tree);
            tree.fit(&sub, &sub_y);
            self.members.push(Member { features, tree });
        }
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .members
            .iter()
            .map(|m| {
                let sub: Vec<f64> = m.features.iter().map(|&f| row[f]).collect();
                m.tree.predict_one(&sub)
            })
            .sum();
        sum / self.members.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn blobs() -> (FeatureMatrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            let (cx, cy) = [(0.0, 0.0), (6.0, 6.0), (0.0, 6.0)][c];
            for i in 0..30 {
                let dx = ((i * 31 + c * 17) % 20) as f64 / 10.0 - 1.0;
                let dy = ((i * 47 + c * 13) % 20) as f64 / 10.0 - 1.0;
                // A noise feature the forest should survive.
                rows.push(vec![cx + dx, cy + dy, ((i * 7919) % 13) as f64]);
                y.push(c);
            }
        }
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn forest_separates_blobs() {
        let (x, y) = blobs();
        let mut f = RandomForestClassifier::new(ForestParams {
            n_trees: 30,
            ..ForestParams::default()
        });
        f.fit(&x, &y, 3);
        assert!(accuracy(&f.predict(&x), &y) > 0.95);
        assert_eq!(f.n_trees(), 30);
    }

    #[test]
    fn forest_probabilities_are_distributions() {
        let (x, y) = blobs();
        let mut f = RandomForestClassifier::new(ForestParams {
            n_trees: 15,
            ..ForestParams::default()
        });
        f.fit(&x, &y, 3);
        let p = f.predict_proba_one(x.row(0), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let (x, y) = blobs();
        let mut a = RandomForestClassifier::new(ForestParams::default());
        a.fit(&x, &y, 3);
        let mut b = RandomForestClassifier::new(ForestParams::default());
        b.fit(&x, &y, 3);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn regressor_beats_single_tree_on_noisy_data() {
        // Noisy linear target: bagging should smooth single-tree overfit.
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..80)
            .map(|i| i as f64 + ((i * 7919) % 11) as f64 - 5.0)
            .collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut forest = RandomForestRegressor::new(ForestParams {
            n_trees: 40,
            sample_fraction: 0.7,
            ..ForestParams::default()
        });
        forest.fit(&x, &y);
        // Predict the clean trend at held-out midpoints.
        let err: f64 = (0..79)
            .map(|i| {
                let p = forest.predict_one(&[i as f64 + 0.5]);
                (p - (i as f64 + 0.5)).abs()
            })
            .sum::<f64>()
            / 79.0;
        assert!(err < 5.0, "mean abs err {err}");
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(resolve_max_features(0, 17), 4);
        assert_eq!(resolve_max_features(0, 4), 2);
        assert_eq!(resolve_max_features(100, 9), 9);
        assert_eq!(resolve_max_features(3, 9), 3);
    }

    #[test]
    fn empty_fit_is_safe() {
        let x = FeatureMatrix::from_rows(&[]);
        let mut f = RandomForestClassifier::new(ForestParams::default());
        f.fit(&x, &[], 2);
        assert_eq!(f.n_trees(), 0);
        let mut r = RandomForestRegressor::new(ForestParams::default());
        r.fit(&x, &[]);
        assert_eq!(r.predict_one(&[1.0]), 0.0);
    }
}
