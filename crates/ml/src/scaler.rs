//! Feature standardization (zero mean, unit variance per column) — required
//! by the scale-sensitive models (SVM's RBF kernel, MLP optimization).

use serde::{Deserialize, Serialize};

use crate::data::FeatureMatrix;

/// Per-column standardizer: `x' = (x - mean) / std`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit to the training matrix. Constant columns get std 1 (pass-through
    /// after centering) so they do not explode.
    pub fn fit(x: &FeatureMatrix) -> StandardScaler {
        let (n, d) = (x.n_rows(), x.n_cols());
        let mut means = vec![0.0; d];
        let mut stds = vec![0.0; d];
        if n == 0 {
            return StandardScaler {
                means,
                stds: vec![1.0; d],
            };
        }
        for i in 0..n {
            for (j, m) in means.iter_mut().enumerate() {
                *m += x.get(i, j);
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        for i in 0..n {
            for j in 0..d {
                let c = x.get(i, j) - means[j];
                stds[j] += c * c;
            }
        }
        for s in &mut stds {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        StandardScaler { means, stds }
    }

    /// Transform a matrix in place.
    pub fn transform(&self, x: &mut FeatureMatrix) {
        assert_eq!(x.n_cols(), self.means.len(), "dimension mismatch");
        for i in 0..x.n_rows() {
            for j in 0..x.n_cols() {
                let v = x.get_mut(i, j);
                *v = (*v - self.means[j]) / self.stds[j];
            }
        }
    }

    /// Transform one sample row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "dimension mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Fit on `x` and transform it, returning the scaler.
    pub fn fit_transform(x: &mut FeatureMatrix) -> StandardScaler {
        let s = StandardScaler::fit(x);
        s.transform(x);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_columns() {
        let mut x = FeatureMatrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]);
        let s = StandardScaler::fit_transform(&mut x);
        // Means zero.
        for j in 0..2 {
            let mean: f64 = (0..3).map(|i| x.get(i, j)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            let var: f64 = (0..3).map(|i| x.get(i, j).powi(2)).sum::<f64>() / 3.0;
            assert!((var - 1.0).abs() < 1e-12);
        }
        // transform_row agrees with matrix transform.
        let row = s.transform_row(&[2.0, 20.0]);
        assert!(row[0].abs() < 1e-12 && row[1].abs() < 1e-12);
    }

    #[test]
    fn constant_column_survives() {
        let mut x = FeatureMatrix::from_rows(&[vec![5.0], vec![5.0]]);
        StandardScaler::fit_transform(&mut x);
        assert_eq!(x.get(0, 0), 0.0);
        assert!(x.get(1, 0).is_finite());
    }

    #[test]
    fn empty_matrix_ok() {
        let x = FeatureMatrix::from_rows(&[]);
        let s = StandardScaler::fit(&x);
        let mut x2 = x;
        s.transform(&mut x2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_row_rejected() {
        let x = FeatureMatrix::from_rows(&[vec![1.0, 2.0]]);
        let s = StandardScaler::fit(&x);
        s.transform_row(&[1.0]);
    }
}
