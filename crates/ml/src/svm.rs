//! Support vector machine classifier (paper §II-B2): RBF kernel, SMO
//! training (simplified Platt), one-vs-one multi-class with majority vote —
//! the scheme scikit-learn's `SVC` uses, which is what the paper ran.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::data::FeatureMatrix;
use crate::model::Classifier;

/// SVM hyper-parameters (the paper grid-searches `c` and `gamma`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmParams {
    /// Soft-margin penalty.
    pub c: f64,
    /// RBF kernel width: `k(a,b) = exp(-gamma * |a-b|^2)`.
    pub gamma: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Passes over the data without any alpha update before stopping.
    pub max_passes: usize,
    /// Hard cap on optimization sweeps.
    pub max_iters: usize,
    /// RNG seed for the SMO partner-choice heuristic.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        Self {
            c: 100.0,
            gamma: 0.1,
            tol: 1e-3,
            max_passes: 5,
            max_iters: 200,
            seed: 0,
        }
    }
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

/// One binary SVM trained by SMO on labels in {-1, +1}.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BinarySvm {
    support: Vec<Vec<f64>>,
    alphas_y: Vec<f64>, // alpha_i * y_i for support vectors
    b: f64,
    gamma: f64,
}

impl BinarySvm {
    fn decision(&self, row: &[f64]) -> f64 {
        self.support
            .iter()
            .zip(&self.alphas_y)
            .map(|(sv, ay)| ay * rbf(sv, row, self.gamma))
            .sum::<f64>()
            + self.b
    }

    /// Simplified SMO (Platt 1998 / Stanford CS229 variant) with a
    /// precomputed kernel matrix.
    fn train(x: &FeatureMatrix, y: &[f64], p: &SvmParams) -> BinarySvm {
        let n = x.n_rows();
        let mut alphas = vec![0.0f64; n];
        let mut b = 0.0f64;
        // Precompute the kernel (training sets per class pair are small).
        let mut kernel = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let k = rbf(x.row(i), x.row(j), p.gamma);
                kernel[i * n + j] = k;
                kernel[j * n + i] = k;
            }
        }
        let f = |alphas: &[f64], b: f64, i: usize| -> f64 {
            let mut s = b;
            for j in 0..n {
                if alphas[j] != 0.0 {
                    s += alphas[j] * y[j] * kernel[j * n + i];
                }
            }
            s
        };

        let mut rng = ChaCha8Rng::seed_from_u64(p.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut passes = 0usize;
        let mut iters = 0usize;
        while passes < p.max_passes && iters < p.max_iters {
            iters += 1;
            let mut changed = 0usize;
            order.shuffle(&mut rng);
            for &i in &order {
                let ei = f(&alphas, b, i) - y[i];
                if (y[i] * ei < -p.tol && alphas[i] < p.c) || (y[i] * ei > p.tol && alphas[i] > 0.0)
                {
                    // Pick a random partner j != i.
                    let mut j = i;
                    while j == i {
                        j = order[rng.gen_range(0..n)];
                    }
                    let ej = f(&alphas, b, j) - y[j];
                    let (ai_old, aj_old) = (alphas[i], alphas[j]);
                    let (lo, hi) = if y[i] != y[j] {
                        ((aj_old - ai_old).max(0.0), (p.c + aj_old - ai_old).min(p.c))
                    } else {
                        ((ai_old + aj_old - p.c).max(0.0), (ai_old + aj_old).min(p.c))
                    };
                    if lo >= hi {
                        continue;
                    }
                    let eta = 2.0 * kernel[i * n + j] - kernel[i * n + i] - kernel[j * n + j];
                    if eta >= 0.0 {
                        continue;
                    }
                    let mut aj = aj_old - y[j] * (ei - ej) / eta;
                    aj = aj.clamp(lo, hi);
                    if (aj - aj_old).abs() < 1e-6 {
                        continue;
                    }
                    let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                    alphas[i] = ai;
                    alphas[j] = aj;
                    let b1 = b
                        - ei
                        - y[i] * (ai - ai_old) * kernel[i * n + i]
                        - y[j] * (aj - aj_old) * kernel[i * n + j];
                    let b2 = b
                        - ej
                        - y[i] * (ai - ai_old) * kernel[i * n + j]
                        - y[j] * (aj - aj_old) * kernel[j * n + j];
                    b = if ai > 0.0 && ai < p.c {
                        b1
                    } else if aj > 0.0 && aj < p.c {
                        b2
                    } else {
                        0.5 * (b1 + b2)
                    };
                    changed += 1;
                }
            }
            passes = if changed == 0 { passes + 1 } else { 0 };
        }

        // Keep only support vectors.
        let mut support = Vec::new();
        let mut alphas_y = Vec::new();
        for i in 0..n {
            if alphas[i] > 1e-9 {
                support.push(x.row(i).to_vec());
                alphas_y.push(alphas[i] * y[i]);
            }
        }
        BinarySvm {
            support,
            alphas_y,
            b,
            gamma: p.gamma,
        }
    }
}

/// One-vs-one multi-class SVM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvmClassifier {
    /// Hyper-parameters.
    pub params: SvmParams,
    n_classes: usize,
    /// `(class_a, class_b, model)` for every pair `a < b`.
    machines: Vec<(usize, usize, BinarySvm)>,
}

impl SvmClassifier {
    /// New classifier with the given parameters.
    pub fn new(params: SvmParams) -> Self {
        Self {
            params,
            n_classes: 0,
            machines: Vec::new(),
        }
    }

    /// Total support vectors across all pairwise machines.
    pub fn n_support_vectors(&self) -> usize {
        self.machines.iter().map(|(_, _, m)| m.support.len()).sum()
    }
}

impl Classifier for SvmClassifier {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize], n_classes: usize) {
        assert_eq!(x.n_rows(), y.len());
        self.n_classes = n_classes;
        self.machines.clear();
        for a in 0..n_classes {
            for b in (a + 1)..n_classes {
                let idx: Vec<usize> = (0..y.len()).filter(|&i| y[i] == a || y[i] == b).collect();
                if idx.is_empty() {
                    continue;
                }
                let sub_x = x.select_rows(&idx);
                let sub_y: Vec<f64> = idx
                    .iter()
                    .map(|&i| if y[i] == a { 1.0 } else { -1.0 })
                    .collect();
                // Degenerate pair (one class absent): skip, votes fall to others.
                if sub_y.iter().all(|&v| v == 1.0) || sub_y.iter().all(|&v| v == -1.0) {
                    continue;
                }
                let mut p = self.params;
                p.seed = p.seed.wrapping_add((a * 31 + b) as u64);
                self.machines
                    .push((a, b, BinarySvm::train(&sub_x, &sub_y, &p)));
            }
        }
    }

    fn predict_one(&self, row: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes.max(1)];
        let mut margins = vec![0.0f64; self.n_classes.max(1)];
        for (a, b, m) in &self.machines {
            let d = m.decision(row);
            if d >= 0.0 {
                votes[*a] += 1;
                margins[*a] += d;
            } else {
                votes[*b] += 1;
                margins[*b] -= d;
            }
        }
        // Majority vote; ties broken by accumulated margin.
        (0..votes.len())
            .max_by(|&i, &j| {
                votes[i]
                    .cmp(&votes[j])
                    .then(margins[i].total_cmp(&margins[j]))
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn blobs(k: usize, per: usize, spread: f64) -> (FeatureMatrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for c in 0..k {
            let cx = (c as f64) * 4.0;
            let cy = (c as f64 % 2.0) * 4.0;
            for i in 0..per {
                let dx = ((i * 37 + c * 11) % 21) as f64 / 20.0 - 0.5;
                let dy = ((i * 53 + c * 7) % 21) as f64 / 20.0 - 0.5;
                rows.push(vec![cx + dx * spread, cy + dy * spread]);
                y.push(c);
            }
        }
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn binary_separable() {
        let (x, y) = blobs(2, 25, 1.0);
        let mut m = SvmClassifier::new(SvmParams::default());
        m.fit(&x, &y, 2);
        assert_eq!(accuracy(&m.predict(&x), &y), 1.0);
        assert!(m.n_support_vectors() > 0);
    }

    #[test]
    fn multiclass_ovo_votes() {
        let (x, y) = blobs(4, 20, 1.0);
        let mut m = SvmClassifier::new(SvmParams::default());
        m.fit(&x, &y, 4);
        assert!(accuracy(&m.predict(&x), &y) > 0.95);
        // 4 classes -> 6 pairwise machines.
        assert_eq!(m.machines.len(), 6);
    }

    #[test]
    fn nonlinear_boundary_via_rbf() {
        // Concentric rings: inner class 0, outer class 1.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let t = i as f64 * 0.21;
            let r = if i % 2 == 0 { 1.0 } else { 3.5 };
            rows.push(vec![r * t.cos(), r * t.sin()]);
            y.push(i % 2);
        }
        let x = FeatureMatrix::from_rows(&rows);
        let mut m = SvmClassifier::new(SvmParams {
            c: 1000.0,
            gamma: 0.5,
            ..SvmParams::default()
        });
        m.fit(&x, &y, 2);
        assert!(accuracy(&m.predict(&x), &y) > 0.95);
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = blobs(3, 15, 1.5);
        let mut a = SvmClassifier::new(SvmParams::default());
        a.fit(&x, &y, 3);
        let mut b = SvmClassifier::new(SvmParams::default());
        b.fit(&x, &y, 3);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn missing_class_pair_is_skipped() {
        // Only classes 0 and 2 present out of 3.
        let x = FeatureMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 4.9],
        ]);
        let y = vec![0, 0, 2, 2];
        let mut m = SvmClassifier::new(SvmParams::default());
        m.fit(&x, &y, 3);
        let pred = m.predict_one(&[5.0, 5.0]);
        assert_eq!(pred, 2);
    }

    #[test]
    fn rbf_kernel_properties() {
        let a = [1.0, 2.0];
        assert!((rbf(&a, &a, 0.7) - 1.0).abs() < 1e-12);
        assert!(rbf(&a, &[3.0, 4.0], 0.7) < 1.0);
        assert!(rbf(&a, &[3.0, 4.0], 0.7) > 0.0);
    }
}
