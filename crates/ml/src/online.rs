//! Online retraining entry point: fit a compact classifier on a small
//! feedback corpus, deterministically for a given seed.
//!
//! The offline trainer ([`crate::gbt`] driven through
//! `spmv_core::FormatAdvisor::train`) assumes a full labeled corpus and a
//! search budget. The online path is different: a few hundred
//! reservoir-sampled feedback rows at most, retrained in the background of
//! a serving process, where the only acceptable cost is milliseconds and
//! the only acceptable output is a byte-reproducible artifact. This module
//! owns that entry point so the serving layer never has to pick
//! hyperparameters.
//!
//! Determinism: [`fit_online_classifier`] must produce the same model for
//! the same `(rows multiset, seed)` at any thread count and for any
//! arrival order of the rows. The GBT fit itself is scheduling-invariant
//! ([`GbtClassifier::fit_with`]) but *row-order sensitive* (floating-point
//! accumulation, tie-breaking in split scans), so the rows are first
//! sorted into a canonical content order, then permuted by a seeded
//! Fisher–Yates shuffle. The final order is a pure function of the row
//! multiset and the seed — nothing about how the caller collected the rows
//! can leak into the artifact bytes.

use crate::data::FeatureMatrix;
use crate::gbt::{GbtClassifier, GbtParams, SplitMethod};
use crate::parallel::Executor;

/// Hyperparameters of the online refresh fit. Smaller than the offline
/// budget on every axis: the corpus is tiny and the fit runs while live
/// traffic is being served.
pub fn online_gbt_params() -> GbtParams {
    GbtParams {
        n_estimators: 40,
        max_depth: 3,
        learning_rate: 0.3,
        split_method: SplitMethod::Exact,
        ..GbtParams::default()
    }
}

/// Deterministic seeded permutation of `0..n` (Fisher–Yates over a
/// splitmix64 stream).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Total order on `(row, label)` pairs by content: lexicographic over the
/// row values (`total_cmp`, so NaN payloads still order), then the label.
fn content_cmp(a: &(Vec<f64>, usize), b: &(Vec<f64>, usize)) -> std::cmp::Ordering {
    for (x, y) in a.0.iter().zip(b.0.iter()) {
        let ord = x.total_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.1.cmp(&b.1)
}

/// Fit the online classifier on `(rows, labels)` with `n_classes` output
/// classes. `rows` are already-projected feature rows (one per feedback
/// sample); `labels` are class ids in `0..n_classes`.
///
/// Byte-deterministic: the same row multiset and seed produce the same
/// model at any thread count and for any arrival order of the rows.
///
/// Returns `None` when the corpus cannot support a fit at all: no rows,
/// ragged row widths, or out-of-range labels.
pub fn fit_online_classifier(
    rows: &[Vec<f64>],
    labels: &[usize],
    n_classes: usize,
    seed: u64,
) -> Option<GbtClassifier> {
    if rows.is_empty() || rows.len() != labels.len() || n_classes == 0 {
        return None;
    }
    let width = rows[0].len();
    if width == 0 || rows.iter().any(|r| r.len() != width) {
        return None;
    }
    if labels.iter().any(|&y| y >= n_classes) {
        return None;
    }
    let mut pairs: Vec<(Vec<f64>, usize)> =
        rows.iter().cloned().zip(labels.iter().copied()).collect();
    pairs.sort_by(content_cmp);
    let order = permutation(pairs.len(), seed);
    let shuffled: Vec<Vec<f64>> = order.iter().map(|&i| pairs[i].0.clone()).collect();
    let y: Vec<usize> = order.iter().map(|&i| pairs[i].1).collect();
    let x = FeatureMatrix::from_rows(&shuffled);
    let mut model = GbtClassifier::new(online_gbt_params());
    model.fit_with(&Executor::serial(), &x, &y, n_classes);
    Some(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Classifier;

    fn corpus() -> (Vec<Vec<f64>>, Vec<usize>) {
        let rows: Vec<Vec<f64>> = (0..24)
            .map(|i| {
                let f = f64::from(i);
                vec![f, f * 2.0, if i % 2 == 0 { 100.0 } else { -100.0 }]
            })
            .collect();
        let labels: Vec<usize> = (0..24).map(|i| i % 2).collect();
        (rows, labels)
    }

    #[test]
    fn fits_and_memorizes_a_small_corpus() {
        let (rows, labels) = corpus();
        let model = fit_online_classifier(&rows, &labels, 2, 7).expect("fit");
        let x = FeatureMatrix::from_rows(&rows);
        assert_eq!(model.predict(&x), labels);
    }

    #[test]
    fn arrival_order_does_not_change_the_model() {
        let (rows, labels) = corpus();
        let a = fit_online_classifier(&rows, &labels, 2, 7).expect("fit");
        let mut rev_rows = rows.clone();
        let mut rev_labels = labels.clone();
        rev_rows.reverse();
        rev_labels.reverse();
        let b = fit_online_classifier(&rev_rows, &rev_labels, 2, 7).expect("fit");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn rejects_degenerate_corpora() {
        assert!(fit_online_classifier(&[], &[], 2, 0).is_none());
        assert!(fit_online_classifier(&[vec![1.0]], &[0], 0, 0).is_none());
        assert!(fit_online_classifier(&[vec![1.0], vec![1.0, 2.0]], &[0, 1], 2, 0).is_none());
        assert!(fit_online_classifier(&[vec![1.0]], &[5], 2, 0).is_none());
    }
}
