//! Gradient-boosted trees in the XGBoost formulation (paper §II-B4):
//! second-order Taylor objective, regularized leaf weights
//! `w* = -G/(H + lambda)`, split gain
//! `1/2 [G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda) - G^2/(H+lambda)] - gamma`,
//! shrinkage, softmax multi-class, and split-count ("F-score") feature
//! importance — the quantity plotted in the paper's Figs. 4-5.
//!
//! Split finding has two interchangeable engines (see [`SplitMethod`]):
//! the original exact-greedy scan, which re-sorts every node's samples
//! per feature (`O(n log n)` per feature per node), and the default
//! histogram engine, which quantile-bins each feature **once per fit**
//! and scans per-node gradient histograms (`O(n + bins)` per feature per
//! node). Whenever a feature has at most `max_bins` distinct values the
//! two engines consider the same candidate partitions in the same order
//! and grow identical trees.
//!
//! The multi-class classifier grows the K trees of one boosting round
//! from gradients of the *same* softmax snapshot (the canonical XGBoost
//! round structure), which makes them independent — `fit_with` grows
//! them in parallel on an [`Executor`] with bit-identical results at any
//! thread count.

use serde::{Deserialize, Serialize};

use crate::data::FeatureMatrix;
use crate::model::{Classifier, Regressor};
use crate::parallel::Executor;

/// How tree growth finds split thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplitMethod {
    /// Exact greedy: sort the node's samples per feature and scan every
    /// boundary between adjacent distinct values.
    Exact,
    /// Histogram: quantile-bin each feature once per fit, then find
    /// splits by scanning per-node histograms of gradient statistics.
    Hist {
        /// Maximum number of bins per feature (clamped to at least 2).
        max_bins: usize,
    },
}

impl Default for SplitMethod {
    fn default() -> Self {
        SplitMethod::Hist { max_bins: 256 }
    }
}

/// Boosting hyper-parameters (the paper grid-searches `n_estimators`,
/// `max_depth`, and `learning_rate`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbtParams {
    /// Boosting rounds.
    pub n_estimators: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// L2 regularization on leaf weights (XGBoost `lambda`).
    pub lambda: f64,
    /// Minimum gain to make a split (XGBoost `gamma`).
    pub gamma: f64,
    /// Minimum hessian mass per child (XGBoost `min_child_weight`).
    pub min_child_weight: f64,
    /// Split-finding engine (histogram by default; `Exact` restores the
    /// pre-histogram behavior). Defaults on deserialization too, so
    /// parameter sets saved before this field existed load unchanged.
    #[serde(default)]
    pub split_method: SplitMethod,
}

impl Default for GbtParams {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            max_depth: 6,
            learning_rate: 0.1,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            split_method: SplitMethod::default(),
        }
    }
}

/// Quantile-binned view of a feature matrix, built once per fit and
/// shared by every tree of the ensemble.
///
/// Per feature: ascending cut values plus a row-major code matrix with
/// `code = number of cuts < value`, so `value <= cuts[c]` iff
/// `code <= c` — training partitions and prediction-time threshold
/// comparisons agree exactly.
#[derive(Debug, Clone)]
struct BinnedMatrix {
    n_features: usize,
    cuts: Vec<Vec<f64>>,
    codes: Vec<u16>,
}

impl BinnedMatrix {
    fn build(x: &FeatureMatrix, max_bins: usize) -> BinnedMatrix {
        let max_bins = max_bins.clamp(2, u16::MAX as usize + 1);
        let n = x.n_rows();
        let nf = x.n_cols();
        let mut cuts = Vec::with_capacity(nf);
        let mut codes = vec![0u16; n * nf];
        let mut col: Vec<f64> = Vec::with_capacity(n);
        for f in 0..nf {
            col.clear();
            col.extend((0..n).map(|i| x.get(i, f)));
            col.sort_unstable_by(f64::total_cmp);
            col.dedup();
            let d = col.len(); // distinct values, ascending
            let c: Vec<f64> = if d <= max_bins {
                // One bin per distinct value: cuts midway between
                // neighbors, exactly the exact-greedy thresholds.
                col.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect()
            } else {
                // Cuts at evenly spaced ranks of the *distinct* values
                // (not of the rows), so sparse regions — e.g. the gap
                // between two clusters — still get a cut. Since d >
                // max_bins the ranks are strictly increasing, hence so
                // are the cuts.
                (1..max_bins)
                    .map(|b| {
                        let r = b * d / max_bins;
                        0.5 * (col[r - 1] + col[r])
                    })
                    .collect()
            };
            for i in 0..n {
                let v = x.get(i, f);
                codes[i * nf + f] = c.partition_point(|&cut| cut < v) as u16;
            }
            cuts.push(c);
        }
        BinnedMatrix {
            n_features: nf,
            cuts,
            codes,
        }
    }

    #[inline]
    fn code(&self, row: usize, feature: usize) -> usize {
        self.codes[row * self.n_features + feature] as usize
    }
}

/// One regression tree over (gradient, hessian) statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum GNode {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf(f64),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct GradTree {
    nodes: Vec<GNode>,
}

/// The winning split of one node: which feature, the threshold to store
/// in the tree, and — for the histogram engine — the cut index that
/// partitions training samples by bin code.
struct BestSplit {
    feature: usize,
    threshold: f64,
    bin: Option<usize>,
    gain: f64,
}

/// Borrowed context for growing one tree; owns the nodes being built and
/// this tree's split-count importance (returned to the caller rather
/// than accumulated into shared state, so trees can grow in parallel).
struct TreeGrower<'a> {
    x: &'a FeatureMatrix,
    g: &'a [f64],
    h: &'a [f64],
    params: &'a GbtParams,
    binned: Option<&'a BinnedMatrix>,
    nodes: Vec<GNode>,
    splits_per_feature: Vec<f64>,
}

impl GradTree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut n = 0usize;
        loop {
            match &self.nodes[n] {
                GNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    n = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    }
                }
                GNode::Leaf(w) => return *w,
            }
        }
    }

    /// Fit a tree to gradients/hessians; returns the tree and its own
    /// split-count ("F-score") importance, one entry per feature.
    fn fit(
        x: &FeatureMatrix,
        g: &[f64],
        h: &[f64],
        params: &GbtParams,
        binned: Option<&BinnedMatrix>,
    ) -> (GradTree, Vec<f64>) {
        let idx: Vec<usize> = (0..x.n_rows()).collect();
        let mut grower = TreeGrower {
            x,
            g,
            h,
            params,
            binned,
            nodes: Vec::new(),
            splits_per_feature: vec![0.0; x.n_cols()],
        };
        grower.grow(&idx, 0);
        (
            GradTree {
                nodes: grower.nodes,
            },
            grower.splits_per_feature,
        )
    }
}

impl TreeGrower<'_> {
    fn grow(&mut self, idx: &[usize], depth: usize) -> usize {
        let gsum: f64 = idx.iter().map(|&i| self.g[i]).sum();
        let hsum: f64 = idx.iter().map(|&i| self.h[i]).sum();
        let leaf_weight = -gsum / (hsum + self.params.lambda);
        if depth >= self.params.max_depth || idx.len() < 2 {
            self.nodes.push(GNode::Leaf(leaf_weight));
            return self.nodes.len() - 1;
        }

        let best = match self.binned {
            Some(b) => self.find_split_hist(b, idx, gsum, hsum),
            None => self.find_split_exact(idx, gsum, hsum),
        };
        match best {
            None => {
                self.nodes.push(GNode::Leaf(leaf_weight));
                self.nodes.len() - 1
            }
            Some(s) => {
                self.splits_per_feature[s.feature] += 1.0;
                let (mut li, mut ri) = (Vec::new(), Vec::new());
                for &i in idx {
                    let goes_left = match s.bin {
                        // Bin codes make the partition exact even when the
                        // stored threshold is not representable midway.
                        Some(b) => self.binned.expect("hist split").code(i, s.feature) <= b,
                        None => self.x.get(i, s.feature) <= s.threshold,
                    };
                    if goes_left {
                        li.push(i);
                    } else {
                        ri.push(i);
                    }
                }
                let slot = self.nodes.len();
                self.nodes.push(GNode::Leaf(0.0));
                let left = self.grow(&li, depth + 1);
                let right = self.grow(&ri, depth + 1);
                self.nodes[slot] = GNode::Split {
                    feature: s.feature,
                    threshold: s.threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }

    /// Gain of a candidate (left, right) partition, or `None` when a
    /// child violates `min_child_weight`.
    #[inline]
    fn gain(&self, gl: f64, hl: f64, gsum: f64, hsum: f64, parent_score: f64) -> Option<f64> {
        let (gr, hr) = (gsum - gl, hsum - hl);
        if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
            return None;
        }
        let lambda = self.params.lambda;
        Some(
            0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score)
                - self.params.gamma,
        )
    }

    /// Exact greedy: per feature, sort the node's samples and scan every
    /// boundary between adjacent distinct values.
    fn find_split_exact(&self, idx: &[usize], gsum: f64, hsum: f64) -> Option<BestSplit> {
        let parent_score = gsum * gsum / (hsum + self.params.lambda);
        let mut best: Option<BestSplit> = None;
        let mut pairs: Vec<(f64, f64, f64)> = Vec::with_capacity(idx.len());
        for f in 0..self.x.n_cols() {
            pairs.clear();
            pairs.extend(
                idx.iter()
                    .map(|&i| (self.x.get(i, f), self.g[i], self.h[i])),
            );
            pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            let (mut gl, mut hl) = (0.0f64, 0.0f64);
            for k in 0..pairs.len() - 1 {
                gl += pairs[k].1;
                hl += pairs[k].2;
                if pairs[k].0 == pairs[k + 1].0 {
                    continue;
                }
                let Some(gain) = self.gain(gl, hl, gsum, hsum, parent_score) else {
                    continue;
                };
                if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(BestSplit {
                        feature: f,
                        threshold: 0.5 * (pairs[k].0 + pairs[k + 1].0),
                        bin: None,
                        gain,
                    });
                }
            }
        }
        best
    }

    /// Histogram engine: accumulate per-bin gradient statistics over the
    /// node's samples, then scan bin boundaries left to right. Empty bins
    /// repeat the previous boundary's partition with an equal gain, so
    /// the strictly-greater comparison keeps candidate order identical to
    /// the exact scan.
    fn find_split_hist(
        &self,
        binned: &BinnedMatrix,
        idx: &[usize],
        gsum: f64,
        hsum: f64,
    ) -> Option<BestSplit> {
        let parent_score = gsum * gsum / (hsum + self.params.lambda);
        let mut best: Option<BestSplit> = None;
        let mut hist: Vec<(f64, f64)> = Vec::new();
        for f in 0..binned.n_features {
            let cuts = &binned.cuts[f];
            if cuts.is_empty() {
                continue; // constant feature
            }
            hist.clear();
            hist.resize(cuts.len() + 1, (0.0, 0.0));
            for &i in idx {
                let b = binned.code(i, f);
                hist[b].0 += self.g[i];
                hist[b].1 += self.h[i];
            }
            let (mut gl, mut hl) = (0.0f64, 0.0f64);
            for (b, &(gb, hb)) in hist[..cuts.len()].iter().enumerate() {
                gl += gb;
                hl += hb;
                let Some(gain) = self.gain(gl, hl, gsum, hsum, parent_score) else {
                    continue;
                };
                if gain > 1e-12 && best.as_ref().is_none_or(|s| gain > s.gain) {
                    best = Some(BestSplit {
                        feature: f,
                        threshold: cuts[b],
                        bin: Some(b),
                        gain,
                    });
                }
            }
        }
        best
    }
}

fn binned_for(params: &GbtParams, x: &FeatureMatrix) -> Option<BinnedMatrix> {
    match params.split_method {
        SplitMethod::Exact => None,
        SplitMethod::Hist { max_bins } => Some(BinnedMatrix::build(x, max_bins)),
    }
}

/// Multi-class gradient-boosted classifier (softmax objective).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbtClassifier {
    /// Hyper-parameters.
    pub params: GbtParams,
    n_classes: usize,
    n_features: usize,
    /// `trees[round][class]`.
    trees: Vec<Vec<GradTree>>,
    importance: Vec<f64>,
}

impl GbtClassifier {
    /// New classifier with the given parameters.
    pub fn new(params: GbtParams) -> Self {
        Self {
            params,
            n_classes: 0,
            n_features: 0,
            trees: Vec::new(),
            importance: Vec::new(),
        }
    }

    /// Split-count ("F-score") feature importance, one entry per feature.
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Number of feature columns the classifier was fitted on (0 before
    /// any fit). Persistence layers record this to verify that a loaded
    /// model and the rows presented to it agree on arity.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    fn scores(&self, row: &[f64]) -> Vec<f64> {
        let mut s = vec![0.0; self.n_classes];
        for round in &self.trees {
            for (k, tree) in round.iter().enumerate() {
                s[k] += self.params.learning_rate * tree.predict(row);
            }
        }
        s
    }

    /// Fit with an explicit executor: the K class trees of each boosting
    /// round grow from the same softmax snapshot, so they are independent
    /// and run as parallel cells. Scores and importance are merged in
    /// class order afterwards — the fitted model is bit-identical at any
    /// thread count.
    pub fn fit_with(&mut self, exec: &Executor, x: &FeatureMatrix, y: &[usize], n_classes: usize) {
        assert_eq!(x.n_rows(), y.len());
        let n = x.n_rows();
        self.n_classes = n_classes;
        self.n_features = x.n_cols();
        self.trees.clear();
        self.importance = vec![0.0; x.n_cols()];
        if n == 0 || n_classes == 0 {
            return;
        }
        let binned = binned_for(&self.params, x);
        // Binary case also uses the softmax formulation for uniformity.
        let mut scores = vec![0.0f64; n * n_classes];
        let mut probs = vec![0.0f64; n * n_classes];
        for _ in 0..self.params.n_estimators {
            for i in 0..n {
                softmax(
                    &scores[i * n_classes..(i + 1) * n_classes],
                    &mut probs[i * n_classes..(i + 1) * n_classes],
                );
            }
            let fitted: Vec<(GradTree, Vec<f64>)> = exec.map(n_classes, |k| {
                let mut g = vec![0.0f64; n];
                let mut h = vec![0.0f64; n];
                for i in 0..n {
                    let p = probs[i * n_classes + k];
                    let target = if y[i] == k { 1.0 } else { 0.0 };
                    g[i] = p - target;
                    h[i] = (p * (1.0 - p)).max(1e-6);
                }
                GradTree::fit(x, &g, &h, &self.params, binned.as_ref())
            });
            let mut round = Vec::with_capacity(n_classes);
            for (k, (tree, imp)) in fitted.into_iter().enumerate() {
                for i in 0..n {
                    scores[i * n_classes + k] += self.params.learning_rate * tree.predict(x.row(i));
                }
                for (total, per_tree) in self.importance.iter_mut().zip(&imp) {
                    *total += per_tree;
                }
                round.push(tree);
            }
            spmv_observe::counter("ml.gbt.trees_fit", n_classes as u64);
            self.trees.push(round);
        }
    }
}

fn softmax(scores: &[f64], out: &mut [f64]) {
    let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut z = 0.0;
    for (o, &s) in out.iter_mut().zip(scores) {
        *o = (s - m).exp();
        z += *o;
    }
    for o in out.iter_mut() {
        *o /= z;
    }
}

impl Classifier for GbtClassifier {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize], n_classes: usize) {
        self.fit_with(&Executor::serial(), x, y, n_classes);
    }

    fn predict_one(&self, row: &[f64]) -> usize {
        self.scores(row)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn predict_proba_one(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let s = self.scores(row);
        let mut p = vec![0.0; n_classes];
        softmax(&s[..n_classes.min(s.len())], &mut p);
        p
    }
}

/// Gradient-boosted regressor (squared-error objective; hessian = 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbtRegressor {
    /// Hyper-parameters.
    pub params: GbtParams,
    base: f64,
    trees: Vec<GradTree>,
    importance: Vec<f64>,
}

impl GbtRegressor {
    /// New regressor with the given parameters.
    pub fn new(params: GbtParams) -> Self {
        Self {
            params,
            base: 0.0,
            trees: Vec::new(),
            importance: Vec::new(),
        }
    }

    /// Split-count feature importance.
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }
}

impl Regressor for GbtRegressor {
    fn fit(&mut self, x: &FeatureMatrix, y: &[f64]) {
        assert_eq!(x.n_rows(), y.len());
        let n = x.n_rows();
        self.trees.clear();
        self.importance = vec![0.0; x.n_cols()];
        if n == 0 {
            self.base = 0.0;
            return;
        }
        let binned = binned_for(&self.params, x);
        self.base = y.iter().sum::<f64>() / n as f64;
        let mut pred = vec![self.base; n];
        let mut g = vec![0.0f64; n];
        let h = vec![1.0f64; n];
        for _ in 0..self.params.n_estimators {
            for ((gi, &pi), &yi) in g.iter_mut().zip(&pred).zip(y) {
                *gi = pi - yi;
            }
            let (tree, imp) = GradTree::fit(x, &g, &h, &self.params, binned.as_ref());
            for (total, per_tree) in self.importance.iter_mut().zip(&imp) {
                *total += per_tree;
            }
            for (i, p) in pred.iter_mut().enumerate() {
                *p += self.params.learning_rate * tree.predict(x.row(i));
            }
            spmv_observe::counter("ml.gbt.trees_fit", 1);
            self.trees.push(tree);
        }
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        self.base
            + self.params.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn three_class_blobs() -> (FeatureMatrix, Vec<usize>) {
        let centers = [(0.0, 0.0), (5.0, 5.0), (0.0, 5.0)];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for k in 0..30 {
                let dx = ((k * 37 + c * 11) % 10) as f64 / 10.0 - 0.5;
                let dy = ((k * 53 + c * 7) % 10) as f64 / 10.0 - 0.5;
                rows.push(vec![cx + dx, cy + dy]);
                y.push(c);
            }
        }
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn classifier_separates_blobs() {
        let (x, y) = three_class_blobs();
        let mut m = GbtClassifier::new(GbtParams {
            n_estimators: 20,
            max_depth: 3,
            ..GbtParams::default()
        });
        m.fit(&x, &y, 3);
        assert!(accuracy(&m.predict(&x), &y) > 0.98);
    }

    #[test]
    fn probabilities_sum_to_one_and_favor_truth() {
        let (x, y) = three_class_blobs();
        let mut m = GbtClassifier::new(GbtParams {
            n_estimators: 15,
            max_depth: 3,
            ..GbtParams::default()
        });
        m.fit(&x, &y, 3);
        let p = m.predict_proba_one(x.row(0), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[y[0]] > 0.5);
    }

    #[test]
    fn hist_matches_exact_when_bins_cover_distinct_values() {
        // The blobs have < 256 distinct values per feature, so the
        // histogram engine considers exactly the exact-greedy candidate
        // partitions: identical accuracy AND identical importance.
        let (x, y) = three_class_blobs();
        let mut exact = GbtClassifier::new(GbtParams {
            n_estimators: 20,
            max_depth: 3,
            split_method: SplitMethod::Exact,
            ..GbtParams::default()
        });
        exact.fit(&x, &y, 3);
        let mut hist = GbtClassifier::new(GbtParams {
            n_estimators: 20,
            max_depth: 3,
            split_method: SplitMethod::Hist { max_bins: 256 },
            ..GbtParams::default()
        });
        hist.fit(&x, &y, 3);
        assert_eq!(
            accuracy(&exact.predict(&x), &y),
            accuracy(&hist.predict(&x), &y)
        );
        assert_eq!(exact.feature_importance(), hist.feature_importance());
        assert_eq!(exact.predict(&x), hist.predict(&x));
    }

    #[test]
    fn coarse_hist_keeps_accuracy_and_importance_ranking() {
        // Even at 8 bins per feature the blobs stay separable and the
        // F-score importance ranking matches the exact engine's.
        let (x, y) = three_class_blobs();
        let mut exact = GbtClassifier::new(GbtParams {
            n_estimators: 20,
            max_depth: 3,
            split_method: SplitMethod::Exact,
            ..GbtParams::default()
        });
        exact.fit(&x, &y, 3);
        let mut hist = GbtClassifier::new(GbtParams {
            n_estimators: 20,
            max_depth: 3,
            split_method: SplitMethod::Hist { max_bins: 8 },
            ..GbtParams::default()
        });
        hist.fit(&x, &y, 3);
        let (ea, ha) = (
            accuracy(&exact.predict(&x), &y),
            accuracy(&hist.predict(&x), &y),
        );
        assert!(ha >= ea - 0.02, "hist accuracy {ha} vs exact {ea}");

        // Ranking check on a fixture with an unambiguous winner (both
        // blob features are equally informative, so their relative order
        // is not meaningful): feature 0 decides the label, feature 1 is
        // noise, and both have more distinct values than bins.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, ((i * 7919) % 13) as f64])
            .collect();
        let y: Vec<usize> = (0..60).map(|i| usize::from(i >= 30)).collect();
        let x = FeatureMatrix::from_rows(&rows);
        for method in [SplitMethod::Exact, SplitMethod::Hist { max_bins: 8 }] {
            let mut m = GbtClassifier::new(GbtParams {
                n_estimators: 10,
                max_depth: 2,
                split_method: method,
                ..GbtParams::default()
            });
            m.fit(&x, &y, 2);
            let imp = m.feature_importance();
            assert!(
                imp[0] > imp[1],
                "{method:?} must rank the signal feature first: {imp:?}"
            );
        }
    }

    #[test]
    fn classifier_fit_is_thread_count_invariant() {
        let (x, y) = three_class_blobs();
        let mut serial = GbtClassifier::new(GbtParams {
            n_estimators: 10,
            max_depth: 3,
            ..GbtParams::default()
        });
        serial.fit_with(&Executor::serial(), &x, &y, 3);
        for threads in [2, 4] {
            let mut par = GbtClassifier::new(GbtParams {
                n_estimators: 10,
                max_depth: 3,
                ..GbtParams::default()
            });
            par.fit_with(&Executor::new(threads), &x, &y, 3);
            assert_eq!(serial.predict(&x), par.predict(&x), "threads = {threads}");
            assert_eq!(
                serial.feature_importance(),
                par.feature_importance(),
                "threads = {threads}"
            );
            for (i, row) in (0..x.n_rows()).map(|i| x.row(i)).enumerate() {
                assert_eq!(serial.scores(row), par.scores(row), "row {i}");
            }
        }
    }

    #[test]
    fn importance_ignores_noise_features() {
        // Feature 0 decides the label; feature 1 is constant noise.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, ((i * 7919) % 13) as f64])
            .collect();
        let y: Vec<usize> = (0..60).map(|i| usize::from(i >= 30)).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut m = GbtClassifier::new(GbtParams {
            n_estimators: 10,
            max_depth: 2,
            ..GbtParams::default()
        });
        m.fit(&x, &y, 2);
        let imp = m.feature_importance();
        assert!(imp[0] > 3.0 * imp[1].max(0.5), "importance {imp:?}");
    }

    #[test]
    fn regressor_fits_quadratic() {
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[0]).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut m = GbtRegressor::new(GbtParams {
            n_estimators: 120,
            max_depth: 4,
            learning_rate: 0.2,
            ..GbtParams::default()
        });
        m.fit(&x, &y);
        let pred = m.predict(&x);
        let mse: f64 = pred
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.5, "mse = {mse}");
    }

    #[test]
    fn shrinkage_regularizes() {
        // With tiny learning rate and few rounds, predictions stay near the
        // base score.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64 * 10.0).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut m = GbtRegressor::new(GbtParams {
            n_estimators: 1,
            learning_rate: 0.01,
            ..GbtParams::default()
        });
        m.fit(&x, &y);
        let base = y.iter().sum::<f64>() / 20.0;
        assert!((m.predict_one(&[0.0]) - base).abs() < 10.0);
    }

    #[test]
    fn gamma_prunes_splits() {
        let (x, y) = three_class_blobs();
        let mut free = GbtClassifier::new(GbtParams {
            n_estimators: 5,
            gamma: 0.0,
            ..GbtParams::default()
        });
        free.fit(&x, &y, 3);
        let mut strict = GbtClassifier::new(GbtParams {
            n_estimators: 5,
            gamma: 1e9,
            ..GbtParams::default()
        });
        strict.fit(&x, &y, 3);
        let free_splits: f64 = free.feature_importance().iter().sum();
        let strict_splits: f64 = strict.feature_importance().iter().sum();
        assert!(strict_splits < free_splits);
        assert_eq!(strict_splits, 0.0, "infinite gamma must forbid all splits");
    }

    #[test]
    fn params_without_split_method_deserialize_to_default() {
        // A GbtParams serialized before the split_method field existed
        // (e.g. inside a cached model) must load with the default engine.
        let old = GbtParams {
            split_method: SplitMethod::Exact,
            ..GbtParams::default()
        };
        let mut v = match serde::Serialize::to_value(&old) {
            serde::Value::Map(m) => m,
            other => panic!("params serialize to a map, got {other:?}"),
        };
        v.retain(|(k, _)| k != "split_method");
        let back: GbtParams =
            serde::Deserialize::from_value(&serde::Value::Map(v)).expect("deserialize");
        assert_eq!(back.split_method, SplitMethod::default());
        assert_eq!(back.n_estimators, old.n_estimators);
    }

    #[test]
    fn empty_fit_predicts_default() {
        let x = FeatureMatrix::from_rows(&[]);
        let mut m = GbtRegressor::new(GbtParams::default());
        m.fit(&x, &[]);
        assert_eq!(m.predict_one(&[1.0]), 0.0);
    }
}
