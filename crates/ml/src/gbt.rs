//! Gradient-boosted trees in the XGBoost formulation (paper §II-B4):
//! second-order Taylor objective, regularized leaf weights
//! `w* = -G/(H + lambda)`, split gain
//! `1/2 [G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda) - G^2/(H+lambda)] - gamma`,
//! shrinkage, softmax multi-class, and split-count ("F-score") feature
//! importance — the quantity plotted in the paper's Figs. 4-5.

use serde::{Deserialize, Serialize};

use crate::data::FeatureMatrix;
use crate::model::{Classifier, Regressor};

/// Boosting hyper-parameters (the paper grid-searches `n_estimators`,
/// `max_depth`, and `learning_rate`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbtParams {
    /// Boosting rounds.
    pub n_estimators: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// L2 regularization on leaf weights (XGBoost `lambda`).
    pub lambda: f64,
    /// Minimum gain to make a split (XGBoost `gamma`).
    pub gamma: f64,
    /// Minimum hessian mass per child (XGBoost `min_child_weight`).
    pub min_child_weight: f64,
}

impl Default for GbtParams {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            max_depth: 6,
            learning_rate: 0.1,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

/// One regression tree over (gradient, hessian) statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum GNode {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf(f64),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct GradTree {
    nodes: Vec<GNode>,
}

impl GradTree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut n = 0usize;
        loop {
            match &self.nodes[n] {
                GNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => n = if row[*feature] <= *threshold { *left } else { *right },
                GNode::Leaf(w) => return *w,
            }
        }
    }

    /// Fit a tree to gradients/hessians; `splits_per_feature` accumulates
    /// the F-score importance.
    fn fit(
        x: &FeatureMatrix,
        g: &[f64],
        h: &[f64],
        params: &GbtParams,
        splits_per_feature: &mut [f64],
    ) -> GradTree {
        let idx: Vec<usize> = (0..x.n_rows()).collect();
        let mut nodes = Vec::new();
        Self::grow(x, g, h, &idx, 0, params, &mut nodes, splits_per_feature);
        GradTree { nodes }
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        x: &FeatureMatrix,
        g: &[f64],
        h: &[f64],
        idx: &[usize],
        depth: usize,
        params: &GbtParams,
        nodes: &mut Vec<GNode>,
        splits_per_feature: &mut [f64],
    ) -> usize {
        let gsum: f64 = idx.iter().map(|&i| g[i]).sum();
        let hsum: f64 = idx.iter().map(|&i| h[i]).sum();
        let leaf_weight = -gsum / (hsum + params.lambda);
        let make_leaf = |nodes: &mut Vec<GNode>| {
            nodes.push(GNode::Leaf(leaf_weight));
            nodes.len() - 1
        };
        if depth >= params.max_depth || idx.len() < 2 {
            return make_leaf(nodes);
        }

        let parent_score = gsum * gsum / (hsum + params.lambda);
        let mut best: Option<(usize, f64, f64)> = None;
        let mut pairs: Vec<(f64, f64, f64)> = Vec::with_capacity(idx.len());
        for f in 0..x.n_cols() {
            pairs.clear();
            pairs.extend(idx.iter().map(|&i| (x.get(i, f), g[i], h[i])));
            pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            let (mut gl, mut hl) = (0.0f64, 0.0f64);
            for k in 0..pairs.len() - 1 {
                gl += pairs[k].1;
                hl += pairs[k].2;
                if pairs[k].0 == pairs[k + 1].0 {
                    continue;
                }
                let (gr, hr) = (gsum - gl, hsum - hl);
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda)
                        - parent_score)
                    - params.gamma;
                if gain > 1e-12 && best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((f, 0.5 * (pairs[k].0 + pairs[k + 1].0), gain));
                }
            }
        }
        match best {
            None => make_leaf(nodes),
            Some((feature, threshold, _)) => {
                splits_per_feature[feature] += 1.0;
                let (mut li, mut ri) = (Vec::new(), Vec::new());
                for &i in idx {
                    if x.get(i, feature) <= threshold {
                        li.push(i);
                    } else {
                        ri.push(i);
                    }
                }
                let slot = nodes.len();
                nodes.push(GNode::Leaf(0.0));
                let left = Self::grow(x, g, h, &li, depth + 1, params, nodes, splits_per_feature);
                let right = Self::grow(x, g, h, &ri, depth + 1, params, nodes, splits_per_feature);
                nodes[slot] = GNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }
}

/// Multi-class gradient-boosted classifier (softmax objective).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbtClassifier {
    /// Hyper-parameters.
    pub params: GbtParams,
    n_classes: usize,
    n_features: usize,
    /// `trees[round][class]`.
    trees: Vec<Vec<GradTree>>,
    importance: Vec<f64>,
}

impl GbtClassifier {
    /// New classifier with the given parameters.
    pub fn new(params: GbtParams) -> Self {
        Self {
            params,
            n_classes: 0,
            n_features: 0,
            trees: Vec::new(),
            importance: Vec::new(),
        }
    }

    /// Split-count ("F-score") feature importance, one entry per feature.
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    fn scores(&self, row: &[f64]) -> Vec<f64> {
        let mut s = vec![0.0; self.n_classes];
        for round in &self.trees {
            for (k, tree) in round.iter().enumerate() {
                s[k] += self.params.learning_rate * tree.predict(row);
            }
        }
        s
    }
}

fn softmax(scores: &[f64], out: &mut [f64]) {
    let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut z = 0.0;
    for (o, &s) in out.iter_mut().zip(scores) {
        *o = (s - m).exp();
        z += *o;
    }
    for o in out.iter_mut() {
        *o /= z;
    }
}

impl Classifier for GbtClassifier {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize], n_classes: usize) {
        assert_eq!(x.n_rows(), y.len());
        let n = x.n_rows();
        self.n_classes = n_classes;
        self.n_features = x.n_cols();
        self.trees.clear();
        self.importance = vec![0.0; x.n_cols()];
        if n == 0 || n_classes == 0 {
            return;
        }
        // Binary case also uses the softmax formulation for uniformity.
        let mut scores = vec![0.0f64; n * n_classes];
        let mut probs = vec![0.0f64; n_classes];
        let mut g = vec![0.0f64; n];
        let mut h = vec![0.0f64; n];
        for _ in 0..self.params.n_estimators {
            let mut round = Vec::with_capacity(n_classes);
            // Compute gradients per class from current scores.
            for k in 0..n_classes {
                for i in 0..n {
                    softmax(&scores[i * n_classes..(i + 1) * n_classes], &mut probs);
                    let p = probs[k];
                    let target = if y[i] == k { 1.0 } else { 0.0 };
                    g[i] = p - target;
                    h[i] = (p * (1.0 - p)).max(1e-6);
                }
                let tree = GradTree::fit(x, &g, &h, &self.params, &mut self.importance);
                for i in 0..n {
                    scores[i * n_classes + k] += self.params.learning_rate * tree.predict(x.row(i));
                }
                round.push(tree);
            }
            self.trees.push(round);
        }
    }

    fn predict_one(&self, row: &[f64]) -> usize {
        self.scores(row)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn predict_proba_one(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let s = self.scores(row);
        let mut p = vec![0.0; n_classes];
        softmax(&s[..n_classes.min(s.len())], &mut p);
        p
    }
}

/// Gradient-boosted regressor (squared-error objective; hessian = 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbtRegressor {
    /// Hyper-parameters.
    pub params: GbtParams,
    base: f64,
    trees: Vec<GradTree>,
    importance: Vec<f64>,
}

impl GbtRegressor {
    /// New regressor with the given parameters.
    pub fn new(params: GbtParams) -> Self {
        Self {
            params,
            base: 0.0,
            trees: Vec::new(),
            importance: Vec::new(),
        }
    }

    /// Split-count feature importance.
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }
}

impl Regressor for GbtRegressor {
    fn fit(&mut self, x: &FeatureMatrix, y: &[f64]) {
        assert_eq!(x.n_rows(), y.len());
        let n = x.n_rows();
        self.trees.clear();
        self.importance = vec![0.0; x.n_cols()];
        if n == 0 {
            self.base = 0.0;
            return;
        }
        self.base = y.iter().sum::<f64>() / n as f64;
        let mut pred = vec![self.base; n];
        let mut g = vec![0.0f64; n];
        let h = vec![1.0f64; n];
        for _ in 0..self.params.n_estimators {
            for ((gi, &pi), &yi) in g.iter_mut().zip(&pred).zip(y) {
                *gi = pi - yi;
            }
            let tree = GradTree::fit(x, &g, &h, &self.params, &mut self.importance);
            for (i, p) in pred.iter_mut().enumerate() {
                *p += self.params.learning_rate * tree.predict(x.row(i));
            }
            self.trees.push(tree);
        }
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        self.base
            + self.params.learning_rate
                * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn three_class_blobs() -> (FeatureMatrix, Vec<usize>) {
        let centers = [(0.0, 0.0), (5.0, 5.0), (0.0, 5.0)];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for k in 0..30 {
                let dx = ((k * 37 + c * 11) % 10) as f64 / 10.0 - 0.5;
                let dy = ((k * 53 + c * 7) % 10) as f64 / 10.0 - 0.5;
                rows.push(vec![cx + dx, cy + dy]);
                y.push(c);
            }
        }
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn classifier_separates_blobs() {
        let (x, y) = three_class_blobs();
        let mut m = GbtClassifier::new(GbtParams {
            n_estimators: 20,
            max_depth: 3,
            ..GbtParams::default()
        });
        m.fit(&x, &y, 3);
        assert!(accuracy(&m.predict(&x), &y) > 0.98);
    }

    #[test]
    fn probabilities_sum_to_one_and_favor_truth() {
        let (x, y) = three_class_blobs();
        let mut m = GbtClassifier::new(GbtParams {
            n_estimators: 15,
            max_depth: 3,
            ..GbtParams::default()
        });
        m.fit(&x, &y, 3);
        let p = m.predict_proba_one(x.row(0), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[y[0]] > 0.5);
    }

    #[test]
    fn importance_ignores_noise_features() {
        // Feature 0 decides the label; feature 1 is constant noise.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, ((i * 7919) % 13) as f64])
            .collect();
        let y: Vec<usize> = (0..60).map(|i| usize::from(i >= 30)).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut m = GbtClassifier::new(GbtParams {
            n_estimators: 10,
            max_depth: 2,
            ..GbtParams::default()
        });
        m.fit(&x, &y, 2);
        let imp = m.feature_importance();
        assert!(imp[0] > 3.0 * imp[1].max(0.5), "importance {imp:?}");
    }

    #[test]
    fn regressor_fits_quadratic() {
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[0]).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut m = GbtRegressor::new(GbtParams {
            n_estimators: 120,
            max_depth: 4,
            learning_rate: 0.2,
            ..GbtParams::default()
        });
        m.fit(&x, &y);
        let pred = m.predict(&x);
        let mse: f64 = pred
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.5, "mse = {mse}");
    }

    #[test]
    fn shrinkage_regularizes() {
        // With tiny learning rate and few rounds, predictions stay near the
        // base score.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64 * 10.0).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut m = GbtRegressor::new(GbtParams {
            n_estimators: 1,
            learning_rate: 0.01,
            ..GbtParams::default()
        });
        m.fit(&x, &y);
        let base = y.iter().sum::<f64>() / 20.0;
        assert!((m.predict_one(&[0.0]) - base).abs() < 10.0);
    }

    #[test]
    fn gamma_prunes_splits() {
        let (x, y) = three_class_blobs();
        let mut free = GbtClassifier::new(GbtParams {
            n_estimators: 5,
            gamma: 0.0,
            ..GbtParams::default()
        });
        free.fit(&x, &y, 3);
        let mut strict = GbtClassifier::new(GbtParams {
            n_estimators: 5,
            gamma: 1e9,
            ..GbtParams::default()
        });
        strict.fit(&x, &y, 3);
        let free_splits: f64 = free.feature_importance().iter().sum();
        let strict_splits: f64 = strict.feature_importance().iter().sum();
        assert!(strict_splits < free_splits);
        assert_eq!(strict_splits, 0.0, "infinite gamma must forbid all splits");
    }

    #[test]
    fn empty_fit_predicts_default() {
        let x = FeatureMatrix::from_rows(&[]);
        let mut m = GbtRegressor::new(GbtParams::default());
        m.fit(&x, &[]);
        assert_eq!(m.predict_one(&[1.0]), 0.0);
    }
}
