//! Common model traits: every classifier/regressor in this crate trains on
//! a [`FeatureMatrix`] and predicts per-row, which is all the experiment
//! pipeline needs.

use crate::data::FeatureMatrix;

/// A multi-class classifier.
pub trait Classifier {
    /// Fit to `x` with integer labels `y` in `0..n_classes`.
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize], n_classes: usize);

    /// Predict the class of one sample.
    fn predict_one(&self, row: &[f64]) -> usize;

    /// Predict classes for every row of `x`.
    fn predict(&self, x: &FeatureMatrix) -> Vec<usize> {
        (0..x.n_rows())
            .map(|i| self.predict_one(x.row(i)))
            .collect()
    }

    /// Class-probability estimates for one sample, if the model provides
    /// them (uniform fallback otherwise).
    fn predict_proba_one(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let mut p = vec![0.0; n_classes];
        p[self.predict_one(row).min(n_classes.saturating_sub(1))] = 1.0;
        p
    }
}

/// A scalar regressor.
pub trait Regressor {
    /// Fit to `x` with real targets `y`.
    fn fit(&mut self, x: &FeatureMatrix, y: &[f64]);

    /// Predict the target of one sample.
    fn predict_one(&self, row: &[f64]) -> f64;

    /// Predict targets for every row of `x`.
    fn predict(&self, x: &FeatureMatrix) -> Vec<f64> {
        (0..x.n_rows())
            .map(|i| self.predict_one(x.row(i)))
            .collect()
    }
}
