//! Deterministic scoped-thread executor for the training engine.
//!
//! The same pattern label collection uses (`LabeledCorpus::collect`): a
//! fixed pool of scoped worker threads pulls cell indices from an atomic
//! counter and writes each result into its pre-allocated slot. Results
//! come back in index order, so as long as each cell is a pure function
//! of its index the output is bit-identical regardless of thread count
//! or scheduling. Grid-search CV, per-class GBT tree growth, and the
//! experiment table sweeps all run their independent cells through this
//! executor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A thread budget plus the machinery to spend it on independent cells.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// Executor running up to `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Executor {
        Executor {
            threads: threads.max(1),
        }
    }

    /// Single-threaded executor: `map` degenerates to a plain loop.
    pub fn serial() -> Executor {
        Executor { threads: 1 }
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate `job(i)` for `i in 0..n` and return the results in index
    /// order. `job` must be a pure function of its index for the output
    /// to be schedule-independent.
    pub fn map<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(job).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = job(i);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                });
            }
        })
        .expect("executor worker panicked");
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("cell produced")
            })
            .collect()
    }
}

impl Default for Executor {
    /// Defaults to the resolved thread budget (env var or all cores).
    fn default() -> Executor {
        Executor::new(thread_budget(None))
    }
}

/// Resolve a thread budget: an explicit request (e.g. a `--threads` flag)
/// wins, else the `SPMV_THREADS` environment variable, else all available
/// cores. Never returns 0.
pub fn thread_budget(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("SPMV_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order_at_any_thread_count() {
        let squares: Vec<usize> = (0..33).map(|i| i * i).collect();
        for threads in [1, 2, 4, 7] {
            let exec = Executor::new(threads);
            assert_eq!(exec.map(33, |i| i * i), squares, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single_cell() {
        let exec = Executor::new(4);
        assert_eq!(exec.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(exec.map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(thread_budget(Some(0)), 1);
    }

    #[test]
    fn explicit_budget_wins() {
        assert_eq!(thread_budget(Some(3)), 3);
        assert!(thread_budget(None) >= 1);
    }

    #[test]
    fn workers_share_the_counter_not_the_cells() {
        // Uneven per-cell cost: make sure every slot still lands in place.
        let exec = Executor::new(4);
        let out = exec.map(20, |i| {
            if i % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }
}
