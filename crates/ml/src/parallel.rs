//! Deterministic scoped-thread executor for the training engine.
//!
//! The same pattern label collection uses (`LabeledCorpus::collect`): a
//! fixed pool of scoped worker threads pulls cell indices from an atomic
//! counter and writes each result into its pre-allocated slot. Results
//! come back in index order, so as long as each cell is a pure function
//! of its index the output is bit-identical regardless of thread count
//! or scheduling. Grid-search CV, per-class GBT tree growth, and the
//! experiment table sweeps all run their independent cells through this
//! executor.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A cell of [`Executor::try_map`] that panicked instead of producing a
/// value. The panic is contained inside the worker (the scope joins
/// cleanly, no lock is poisoned, every other cell still completes) and
/// surfaced as a per-slot error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPanic {
    /// Index of the cell whose job panicked.
    pub index: usize,
    /// The panic payload, if it was a string (the common case).
    pub message: String,
}

impl std::fmt::Display for CellPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for CellPanic {}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A thread budget plus the machinery to spend it on independent cells.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// Executor running up to `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Executor {
        Executor {
            threads: threads.max(1),
        }
    }

    /// Single-threaded executor: `map` degenerates to a plain loop.
    pub fn serial() -> Executor {
        Executor { threads: 1 }
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate `job(i)` for `i in 0..n` and return the results in index
    /// order. `job` must be a pure function of its index for the output
    /// to be schedule-independent.
    ///
    /// A panicking cell no longer tears down the pool or poisons any lock:
    /// every other cell still completes, the scope joins cleanly, and the
    /// panic is re-raised (deterministically, lowest failing index first)
    /// only after the full sweep finished. Callers that want per-slot
    /// errors instead use [`Executor::try_map`].
    pub fn map<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = Vec::with_capacity(n);
        for (i, r) in self.try_map(n, job).into_iter().enumerate() {
            match r {
                Ok(v) => out.push(v),
                Err(p) => panic!("executor cell {i} panicked: {}", p.message),
            }
        }
        out
    }

    /// Like [`Executor::map`], but each cell's panic is contained via
    /// `catch_unwind` inside the worker and returned as a per-slot
    /// `Err(CellPanic)`. The scope always joins cleanly and no mutex is
    /// left poisoned, so one bad cell cannot take down a sweep.
    pub fn try_map<T, F>(&self, n: usize, job: F) -> Vec<Result<T, CellPanic>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.try_map_with(n, || (), |(), i| job(i))
    }

    /// [`Executor::try_map`] with per-worker scratch state: `init` builds
    /// one `S` per worker and `job(&mut scratch, i)` reuses it across every
    /// cell that worker claims. This is the allocation-amortization hook —
    /// label collection keeps format-structure buffers in the scratch, so
    /// the steady state allocates ~nothing per matrix.
    ///
    /// Determinism contract: `job`'s *result* must be a pure function of
    /// its index — the scratch may carry capacity between cells but never
    /// values that change an output. After a contained panic the worker's
    /// scratch is rebuilt with `init`, so a half-written buffer from the
    /// panicking cell cannot leak into the next one.
    pub fn try_map_with<S, T, I, F>(&self, n: usize, init: I, job: F) -> Vec<Result<T, CellPanic>>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let run_cell = |scratch: &mut S, i: usize| -> Result<T, CellPanic> {
            catch_unwind(AssertUnwindSafe(|| job(scratch, i))).map_err(|payload| CellPanic {
                index: i,
                message: panic_message(payload),
            })
        };
        if self.threads == 1 || n <= 1 {
            let mut scratch = init();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let r = run_cell(&mut scratch, i);
                if r.is_err() {
                    scratch = init();
                }
                out.push(r);
            }
            return out;
        }
        let slots: Vec<Mutex<Option<Result<T, CellPanic>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        // Worker bodies catch their own panics, so the scope result is
        // always Ok; should that invariant ever break, the error branch
        // below degrades the missing slots instead of panicking here.
        let _ = crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| {
                    let mut scratch = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out = run_cell(&mut scratch, i);
                        if out.is_err() {
                            scratch = init();
                        }
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .unwrap_or(Err(CellPanic {
                        index: i,
                        message: "worker terminated before producing this cell".to_string(),
                    }))
            })
            .collect()
    }
}

impl Default for Executor {
    /// Defaults to the resolved thread budget (env var or all cores).
    fn default() -> Executor {
        Executor::new(thread_budget(None))
    }
}

/// Resolve a thread budget: an explicit request (e.g. a `--threads` flag)
/// wins, else the `SPMV_THREADS` environment variable, else all available
/// cores. Never returns 0.
pub fn thread_budget(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("SPMV_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order_at_any_thread_count() {
        let squares: Vec<usize> = (0..33).map(|i| i * i).collect();
        for threads in [1, 2, 4, 7] {
            let exec = Executor::new(threads);
            assert_eq!(exec.map(33, |i| i * i), squares, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single_cell() {
        let exec = Executor::new(4);
        assert_eq!(exec.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(exec.map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(thread_budget(Some(0)), 1);
    }

    #[test]
    fn explicit_budget_wins() {
        assert_eq!(thread_budget(Some(3)), 3);
        assert!(thread_budget(None) >= 1);
    }

    #[test]
    fn try_map_contains_cell_panics_at_any_thread_count() {
        for threads in [1, 4] {
            let exec = Executor::new(threads);
            let out = exec.try_map(12, |i| {
                if i % 3 == 0 {
                    panic!("boom {i}");
                }
                i * 2
            });
            assert_eq!(out.len(), 12, "threads = {threads}");
            for (i, r) in out.iter().enumerate() {
                if i % 3 == 0 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, i);
                    assert_eq!(p.message, format!("boom {i}"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2);
                }
            }
        }
    }

    #[test]
    fn try_map_survives_a_panicking_cell_and_keeps_working() {
        // The executor must stay usable after containing a panic: no
        // poisoned state leaks across calls.
        let exec = Executor::new(3);
        let first = exec.try_map(5, |i| {
            if i == 2 {
                panic!("one bad cell");
            }
            i
        });
        assert!(first[2].is_err());
        assert_eq!(first.iter().filter(|r| r.is_ok()).count(), 4);
        let second = exec.try_map(5, |i| i + 1);
        assert!(second.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn try_map_with_reuses_scratch_and_stays_deterministic() {
        use std::sync::atomic::AtomicUsize;
        // Scratch is a growable buffer; results must not depend on what a
        // previous cell left in it, and the number of `init` calls is
        // bounded by the worker count (that's the whole point).
        let inits = AtomicUsize::new(0);
        for threads in [1usize, 4] {
            inits.store(0, Ordering::Relaxed);
            let exec = Executor::new(threads);
            let out = exec.try_map_with(
                40,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |buf, i| {
                    buf.clear();
                    buf.extend(0..=i);
                    buf.iter().sum::<usize>()
                },
            );
            let expect: Vec<usize> = (0..40).map(|i| i * (i + 1) / 2).collect();
            let got: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(got, expect, "threads = {threads}");
            assert!(
                inits.load(Ordering::Relaxed) <= threads,
                "one scratch per worker, not per cell"
            );
        }
    }

    #[test]
    fn try_map_with_rebuilds_scratch_after_a_contained_panic() {
        let exec = Executor::new(1);
        // Cell 3 poisons its scratch then panics; cell 4 must see a fresh
        // scratch, not the poisoned one.
        let out = exec.try_map_with(
            6,
            || 0usize,
            |state, i| {
                if i == 3 {
                    *state = 999;
                    panic!("poisoned");
                }
                *state
            },
        );
        assert!(out[3].is_err());
        assert_eq!(*out[4].as_ref().unwrap(), 0, "scratch was rebuilt");
    }

    #[test]
    fn map_reraises_contained_panics_after_the_sweep() {
        let exec = Executor::new(2);
        let caught = std::panic::catch_unwind(|| {
            exec.map(6, |i| {
                if i == 1 {
                    panic!("late repanic");
                }
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn workers_share_the_counter_not_the_cells() {
        // Uneven per-cell cost: make sure every slot still lands in place.
        let exec = Executor::new(4);
        let out = exec.map(20, |i| {
            if i % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }
}
