//! MLP ensembles (paper §VI): several MLPs trained from different seeds,
//! predictions combined by averaging — probabilities for classification,
//! values for regression. The paper's performance-modeling headline (≈10 %
//! RME) comes from this model.

use serde::{Deserialize, Serialize};

use crate::data::FeatureMatrix;
use crate::mlp::{MlpClassifier, MlpParams, MlpRegressor};
use crate::model::{Classifier, Regressor};

/// Ensemble of MLP classifiers (averaged softmax outputs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpEnsembleClassifier {
    /// Base-model parameters (seed is varied per member).
    pub params: MlpParams,
    /// Ensemble size.
    pub n_members: usize,
    members: Vec<MlpClassifier>,
    n_classes: usize,
}

impl MlpEnsembleClassifier {
    /// New ensemble of `n_members` MLPs.
    pub fn new(params: MlpParams, n_members: usize) -> Self {
        assert!(n_members >= 1);
        Self {
            params,
            n_members,
            members: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Classifier for MlpEnsembleClassifier {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize], n_classes: usize) {
        self.n_classes = n_classes;
        self.members = (0..self.n_members)
            .map(|k| {
                let mut p = self.params.clone();
                p.seed = p.seed.wrapping_add(0x9e37 * (k as u64 + 1));
                let mut m = MlpClassifier::new(p);
                m.fit(x, y, n_classes);
                m
            })
            .collect();
    }

    fn predict_one(&self, row: &[f64]) -> usize {
        let p = self.predict_proba_one(row, self.n_classes.max(1));
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn predict_proba_one(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let mut acc = vec![0.0; n_classes];
        for m in &self.members {
            for (a, p) in acc.iter_mut().zip(m.predict_proba_one(row, n_classes)) {
                *a += p;
            }
        }
        let k = self.members.len().max(1) as f64;
        for a in &mut acc {
            *a /= k;
        }
        acc
    }
}

/// Ensemble of MLP regressors (averaged predictions).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpEnsembleRegressor {
    /// Base-model parameters (seed is varied per member).
    pub params: MlpParams,
    /// Ensemble size.
    pub n_members: usize,
    members: Vec<MlpRegressor>,
}

impl MlpEnsembleRegressor {
    /// New ensemble of `n_members` MLP regressors.
    pub fn new(params: MlpParams, n_members: usize) -> Self {
        assert!(n_members >= 1);
        Self {
            params,
            n_members,
            members: Vec::new(),
        }
    }
}

impl Regressor for MlpEnsembleRegressor {
    fn fit(&mut self, x: &FeatureMatrix, y: &[f64]) {
        self.members = (0..self.n_members)
            .map(|k| {
                let mut p = self.params.clone();
                p.seed = p.seed.wrapping_add(0x517c * (k as u64 + 1));
                let mut m = MlpRegressor::new(p);
                m.fit(x, y);
                m
            })
            .collect();
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        self.members.iter().map(|m| m.predict_one(row)).sum::<f64>() / self.members.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MlpParams {
        MlpParams {
            hidden: vec![12, 6],
            epochs: 80,
            learning_rate: 5e-3,
            ..MlpParams::default()
        }
    }

    #[test]
    fn ensemble_classifier_works() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut m = MlpEnsembleClassifier::new(params(), 3);
        m.fit(&x, &y, 2);
        let acc = crate::metrics::accuracy(&m.predict(&x), &y);
        assert!(acc > 0.9, "acc = {acc}");
        let p = m.predict_proba_one(x.row(0), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ensemble_variance_below_member_variance() {
        // On a noisy regression task the ensemble mean should deviate from
        // the truth no more than the worst single member.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 5.0]).collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| 2.0 * r[0] + ((i * 7919 % 13) as f64 - 6.0) * 0.05)
            .collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut ens = MlpEnsembleRegressor::new(params(), 4);
        ens.fit(&x, &y);
        let ens_err: f64 = ens
            .predict(&x)
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t).abs())
            .sum();
        let mut worst = 0.0f64;
        for k in 0..4 {
            let mut p = params();
            p.seed = p.seed.wrapping_add(0x517c * (k as u64 + 1));
            let mut m = MlpRegressor::new(p);
            m.fit(&x, &y);
            let e: f64 = m
                .predict(&x)
                .iter()
                .zip(&y)
                .map(|(p, t)| (p - t).abs())
                .sum();
            worst = worst.max(e);
        }
        assert!(
            ens_err <= worst * 1.05,
            "ens {ens_err} vs worst member {worst}"
        );
    }

    #[test]
    fn members_differ_by_seed() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut ens = MlpEnsembleRegressor::new(params(), 2);
        ens.fit(&x, &y);
        let a = ens.members[0].predict_one(&[10.0]);
        let b = ens.members[1].predict_one(&[10.0]);
        assert_ne!(a, b, "members should start from different seeds");
    }

    #[test]
    #[should_panic]
    fn zero_members_rejected() {
        MlpEnsembleRegressor::new(params(), 0);
    }
}
