//! CART decision trees (paper §II-B1): exact greedy splits, Gini impurity
//! for classification, variance reduction for regression.

use serde::{Deserialize, Serialize};

use crate::data::FeatureMatrix;
use crate::model::{Classifier, Regressor};

/// Tree growth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
        }
    }
}

/// Internal node storage (indices into the node arena).
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Leaf payload: class counts (classifier) or mean target (regressor)
    /// stored as a vector to share the arena type.
    Leaf(Vec<f64>),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn leaf_of(&self, row: &[f64]) -> &[f64] {
        let mut n = 0usize;
        loop {
            match &self.nodes[n] {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    n = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
                Node::Leaf(payload) => return payload,
            }
        }
    }

    fn depth_from(&self, n: usize) -> usize {
        match &self.nodes[n] {
            Node::Leaf(_) => 0,
            Node::Split { left, right, .. } => {
                1 + self.depth_from(*left).max(self.depth_from(*right))
            }
        }
    }
}

/// Best split of `idx` on any feature, by impurity decrease.
/// `impurity(members) -> (impurity_value, weight)` over a label accessor is
/// specialized by the two builders below, so the scan stays monomorphic.
struct SplitChoice {
    feature: usize,
    threshold: f64,
    left: Vec<usize>,
    right: Vec<usize>,
}

/// CART classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeClassifier {
    /// Growth parameters.
    pub params: TreeParams,
    tree: Option<Tree>,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// New classifier with the given parameters.
    pub fn new(params: TreeParams) -> Self {
        Self {
            params,
            tree: None,
            n_classes: 0,
        }
    }

    /// Depth of the grown tree (0 = single leaf / unfit).
    pub fn depth(&self) -> usize {
        self.tree.as_ref().map_or(0, |t| t.depth_from(0))
    }

    fn gini(counts: &[f64], total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        1.0 - counts
            .iter()
            .map(|c| (c / total) * (c / total))
            .sum::<f64>()
    }

    fn best_split(&self, x: &FeatureMatrix, y: &[usize], idx: &[usize]) -> Option<SplitChoice> {
        let n = idx.len() as f64;
        let mut parent_counts = vec![0.0; self.n_classes];
        for &i in idx {
            parent_counts[y[i]] += 1.0;
        }
        let parent_gini = Self::gini(&parent_counts, n);
        if parent_gini == 0.0 {
            return None; // pure node
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        let mut pairs: Vec<(f64, usize)> = Vec::with_capacity(idx.len());
        for f in 0..x.n_cols() {
            pairs.clear();
            pairs.extend(idx.iter().map(|&i| (x.get(i, f), y[i])));
            pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            let mut left_counts = vec![0.0; self.n_classes];
            let mut n_left = 0.0;
            for k in 0..pairs.len() - 1 {
                left_counts[pairs[k].1] += 1.0;
                n_left += 1.0;
                if pairs[k].0 == pairs[k + 1].0 {
                    continue; // can't split between equal values
                }
                let n_right = n - n_left;
                if (n_left as usize) < self.params.min_samples_leaf
                    || (n_right as usize) < self.params.min_samples_leaf
                {
                    continue;
                }
                let right_counts: Vec<f64> = parent_counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(p, l)| p - l)
                    .collect();
                let gain = parent_gini
                    - (n_left / n) * Self::gini(&left_counts, n_left)
                    - (n_right / n) * Self::gini(&right_counts, n_right);
                if best.is_none_or(|(_, _, g)| gain > g + 1e-15) {
                    let threshold = 0.5 * (pairs[k].0 + pairs[k + 1].0);
                    best = Some((f, threshold, gain));
                }
            }
        }
        // Like sklearn's CART, accept the best valid split even at zero gain
        // (otherwise XOR-like interactions are unlearnable greedily); purity
        // and depth limits still bound growth.
        let (feature, threshold, gain) = best?;
        if gain < 0.0 {
            return None;
        }
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for &i in idx {
            if x.get(i, feature) <= threshold {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        Some(SplitChoice {
            feature,
            threshold,
            left,
            right,
        })
    }

    fn grow(
        &self,
        x: &FeatureMatrix,
        y: &[usize],
        idx: &[usize],
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> usize {
        let make_leaf = |nodes: &mut Vec<Node>, idx: &[usize]| {
            let mut counts = vec![0.0; self.n_classes];
            for &i in idx {
                counts[y[i]] += 1.0;
            }
            let total: f64 = counts.iter().sum();
            if total > 0.0 {
                for c in &mut counts {
                    *c /= total;
                }
            }
            nodes.push(Node::Leaf(counts));
            nodes.len() - 1
        };
        if depth >= self.params.max_depth || idx.len() < self.params.min_samples_split {
            return make_leaf(nodes, idx);
        }
        match self.best_split(x, y, idx) {
            None => make_leaf(nodes, idx),
            Some(s) => {
                let slot = nodes.len();
                nodes.push(Node::Leaf(Vec::new())); // placeholder
                let left = self.grow(x, y, &s.left, depth + 1, nodes);
                let right = self.grow(x, y, &s.right, depth + 1, nodes);
                nodes[slot] = Node::Split {
                    feature: s.feature,
                    threshold: s.threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }
}

impl Classifier for DecisionTreeClassifier {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize], n_classes: usize) {
        assert_eq!(x.n_rows(), y.len());
        assert!(n_classes >= 1);
        self.n_classes = n_classes;
        let idx: Vec<usize> = (0..x.n_rows()).collect();
        let mut nodes = Vec::new();
        self.grow(x, y, &idx, 0, &mut nodes);
        self.tree = Some(Tree { nodes });
    }

    fn predict_one(&self, row: &[f64]) -> usize {
        let probs = self.tree.as_ref().expect("fit before predict").leaf_of(row);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn predict_proba_one(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let probs = self.tree.as_ref().expect("fit before predict").leaf_of(row);
        let mut p = probs.to_vec();
        p.resize(n_classes, 0.0);
        p
    }
}

/// CART regressor (variance-reduction splits, mean-value leaves).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeRegressor {
    /// Growth parameters.
    pub params: TreeParams,
    tree: Option<Tree>,
}

impl DecisionTreeRegressor {
    /// New regressor with the given parameters.
    pub fn new(params: TreeParams) -> Self {
        Self { params, tree: None }
    }

    fn best_split(&self, x: &FeatureMatrix, y: &[f64], idx: &[usize]) -> Option<SplitChoice> {
        let n = idx.len() as f64;
        let sum: f64 = idx.iter().map(|&i| y[i]).sum();
        let sum_sq: f64 = idx.iter().map(|&i| y[i] * y[i]).sum();
        let parent_sse = sum_sq - sum * sum / n;
        let mut best: Option<(usize, f64, f64)> = None;
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(idx.len());
        for f in 0..x.n_cols() {
            pairs.clear();
            pairs.extend(idx.iter().map(|&i| (x.get(i, f), y[i])));
            pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            let (mut ls, mut lss, mut nl) = (0.0f64, 0.0f64, 0.0f64);
            for k in 0..pairs.len() - 1 {
                ls += pairs[k].1;
                lss += pairs[k].1 * pairs[k].1;
                nl += 1.0;
                if pairs[k].0 == pairs[k + 1].0 {
                    continue;
                }
                let nr = n - nl;
                if (nl as usize) < self.params.min_samples_leaf
                    || (nr as usize) < self.params.min_samples_leaf
                {
                    continue;
                }
                let rs = sum - ls;
                let rss = sum_sq - lss;
                let sse = (lss - ls * ls / nl) + (rss - rs * rs / nr);
                let gain = parent_sse - sse;
                if best.is_none_or(|(_, _, g)| gain > g + 1e-15) {
                    best = Some((f, 0.5 * (pairs[k].0 + pairs[k + 1].0), gain));
                }
            }
        }
        let (feature, threshold, gain) = best?;
        if gain <= 1e-12 * (1.0 + parent_sse.abs()) {
            return None;
        }
        let _ = gain;
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for &i in idx {
            if x.get(i, feature) <= threshold {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        Some(SplitChoice {
            feature,
            threshold,
            left,
            right,
        })
    }

    fn grow(
        &self,
        x: &FeatureMatrix,
        y: &[f64],
        idx: &[usize],
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> usize {
        let make_leaf = |nodes: &mut Vec<Node>, idx: &[usize]| {
            let mean = if idx.is_empty() {
                0.0
            } else {
                idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
            };
            nodes.push(Node::Leaf(vec![mean]));
            nodes.len() - 1
        };
        if depth >= self.params.max_depth || idx.len() < self.params.min_samples_split {
            return make_leaf(nodes, idx);
        }
        match self.best_split(x, y, idx) {
            None => make_leaf(nodes, idx),
            Some(s) => {
                let slot = nodes.len();
                nodes.push(Node::Leaf(Vec::new()));
                let left = self.grow(x, y, &s.left, depth + 1, nodes);
                let right = self.grow(x, y, &s.right, depth + 1, nodes);
                nodes[slot] = Node::Split {
                    feature: s.feature,
                    threshold: s.threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, x: &FeatureMatrix, y: &[f64]) {
        assert_eq!(x.n_rows(), y.len());
        let idx: Vec<usize> = (0..x.n_rows()).collect();
        let mut nodes = Vec::new();
        self.grow(x, y, &idx, 0, &mut nodes);
        self.tree = Some(Tree { nodes });
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        self.tree.as_ref().expect("fit before predict").leaf_of(row)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (FeatureMatrix, Vec<usize>) {
        // XOR is not linearly separable but a depth-2 tree nails it.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for jitter in 0..5 {
                    rows.push(vec![
                        a as f64 + jitter as f64 * 0.01,
                        b as f64 - jitter as f64 * 0.01,
                    ]);
                    y.push(a ^ b);
                }
            }
        }
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn classifier_learns_xor() {
        let (x, y) = xor_data();
        let mut t = DecisionTreeClassifier::new(TreeParams::default());
        t.fit(&x, &y, 2);
        assert_eq!(t.predict(&x), y);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn classifier_respects_max_depth() {
        let (x, y) = xor_data();
        let mut t = DecisionTreeClassifier::new(TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        });
        t.fit(&x, &y, 2);
        assert!(t.depth() <= 1);
    }

    #[test]
    fn pure_node_stops_growing() {
        let x = FeatureMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let mut t = DecisionTreeClassifier::new(TreeParams::default());
        t.fit(&x, &[1, 1, 1], 2);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict_one(&[9.0]), 1);
    }

    #[test]
    fn proba_reflects_leaf_composition() {
        // One leaf forced to hold a 2:1 mix.
        let x = FeatureMatrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0], vec![1.0]]);
        let mut t = DecisionTreeClassifier::new(TreeParams::default());
        t.fit(&x, &[0, 0, 1, 1], 2);
        let p = t.predict_proba_one(&[0.0], 2);
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn regressor_fits_step_function() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut t = DecisionTreeRegressor::new(TreeParams::default());
        t.fit(&x, &y);
        assert!((t.predict_one(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict_one(&[30.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn regressor_min_samples_leaf() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut t = DecisionTreeRegressor::new(TreeParams {
            min_samples_leaf: 5,
            ..TreeParams::default()
        });
        t.fit(&x, &y);
        // Only one split possible (5|5).
        let tree = t.tree.as_ref().expect("tree grown");
        assert!(tree.depth_from(0) <= 1);
    }

    #[test]
    fn duplicate_feature_values_never_split_between_equals() {
        let x = FeatureMatrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]);
        let mut t = DecisionTreeClassifier::new(TreeParams::default());
        t.fit(&x, &[0, 1, 0, 1], 2);
        // No valid split exists; must stay a leaf and pick the majority.
        assert_eq!(t.depth(), 0);
    }
}
