//! Multi-layer perceptron (paper §II-B3): the paper's configuration is
//! three hidden layers of 96, 48, and 16 ReLU units trained with mini-batch
//! size 16. We train with Adam and (for classification) a softmax
//! cross-entropy head, or (for regression) a linear head under MSE.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::data::FeatureMatrix;
use crate::model::{Classifier, Regressor};

/// MLP hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpParams {
    /// Hidden-layer widths (paper: `[96, 48, 16]`).
    pub hidden: Vec<usize>,
    /// Mini-batch size (paper: 16).
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Initialization / shuffling seed.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        Self {
            hidden: vec![96, 48, 16],
            batch_size: 16,
            epochs: 60,
            learning_rate: 1e-3,
            weight_decay: 1e-5,
            seed: 0,
        }
    }
}

/// One dense layer with Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    w: Vec<f64>, // out x in, row-major
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new(n_in: usize, n_out: usize, rng: &mut ChaCha8Rng) -> Dense {
        // He initialization for ReLU nets.
        let scale = (2.0 / n_in.max(1) as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Dense {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.n_out);
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let s: f64 = row.iter().zip(x).map(|(w, v)| w * v).sum();
            out.push(s + self.b[o]);
        }
    }

    /// Accumulate gradients for one sample; returns dL/dx.
    fn backward(&self, x: &[f64], dout: &[f64], gw: &mut [f64], gb: &mut [f64]) -> Vec<f64> {
        let mut dx = vec![0.0; self.n_in];
        for o in 0..self.n_out {
            let d = dout[o];
            gb[o] += d;
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let grow = &mut gw[o * self.n_in..(o + 1) * self.n_in];
            for i in 0..self.n_in {
                grow[i] += d * x[i];
                dx[i] += d * row[i];
            }
        }
        dx
    }

    #[allow(clippy::too_many_arguments)]
    fn adam_step(
        &mut self,
        gw: &[f64],
        gb: &[f64],
        lr: f64,
        wd: f64,
        t: usize,
        beta1: f64,
        beta2: f64,
    ) {
        let bc1 = 1.0 - beta1.powi(t as i32);
        let bc2 = 1.0 - beta2.powi(t as i32);
        for (i, w) in self.w.iter_mut().enumerate() {
            let g = gw[i] + wd * *w;
            self.mw[i] = beta1 * self.mw[i] + (1.0 - beta1) * g;
            self.vw[i] = beta2 * self.vw[i] + (1.0 - beta2) * g * g;
            *w -= lr * (self.mw[i] / bc1) / ((self.vw[i] / bc2).sqrt() + 1e-8);
        }
        for (o, b) in self.b.iter_mut().enumerate() {
            let g = gb[o];
            self.mb[o] = beta1 * self.mb[o] + (1.0 - beta1) * g;
            self.vb[o] = beta2 * self.vb[o] + (1.0 - beta2) * g * g;
            *b -= lr * (self.mb[o] / bc1) / ((self.vb[o] / bc2).sqrt() + 1e-8);
        }
    }
}

/// The shared network core.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Net {
    layers: Vec<Dense>,
    step: usize,
}

impl Net {
    fn new(n_in: usize, hidden: &[usize], n_out: usize, seed: u64) -> Net {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut dims = vec![n_in];
        dims.extend_from_slice(hidden);
        dims.push(n_out);
        let layers = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        Net { layers, step: 0 }
    }

    /// Forward pass keeping post-activation values per layer (activations[0]
    /// is the input; the final layer output is linear).
    fn forward_all(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(acts.last().expect("non-empty"), &mut buf);
            if li + 1 < self.layers.len() {
                for v in buf.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
            }
            acts.push(buf.clone());
        }
        acts
    }

    fn output(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut buf);
            if li + 1 < self.layers.len() {
                for v in buf.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut cur, &mut buf);
        }
        cur
    }

    /// One Adam update from a mini-batch, given a per-sample output-gradient
    /// callback `dloss(sample_idx, output) -> dL/doutput`.
    fn train_batch<F>(&mut self, x: &FeatureMatrix, batch: &[usize], lr: f64, wd: f64, dloss: F)
    where
        F: Fn(usize, &[f64]) -> Vec<f64>,
    {
        let mut gws: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gbs: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        for &i in batch {
            let acts = self.forward_all(x.row(i));
            let out = acts.last().expect("non-empty");
            let mut delta = dloss(i, out);
            for li in (0..self.layers.len()).rev() {
                // ReLU derivative for hidden layers (output layer linear).
                if li + 1 < self.layers.len() {
                    for (d, a) in delta.iter_mut().zip(&acts[li + 1]) {
                        if *a <= 0.0 {
                            *d = 0.0;
                        }
                    }
                }
                delta = self.layers[li].backward(&acts[li], &delta, &mut gws[li], &mut gbs[li]);
            }
        }
        let scale = 1.0 / batch.len().max(1) as f64;
        for g in gws.iter_mut().flat_map(|v| v.iter_mut()) {
            *g *= scale;
        }
        for g in gbs.iter_mut().flat_map(|v| v.iter_mut()) {
            *g *= scale;
        }
        self.step += 1;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            layer.adam_step(&gws[li], &gbs[li], lr, wd, self.step, 0.9, 0.999);
        }
    }
}

fn softmax_inplace(v: &mut [f64]) {
    let m = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut z = 0.0;
    for x in v.iter_mut() {
        *x = (*x - m).exp();
        z += *x;
    }
    for x in v.iter_mut() {
        *x /= z;
    }
}

/// MLP classifier (softmax cross-entropy head).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpClassifier {
    /// Hyper-parameters.
    pub params: MlpParams,
    net: Option<Net>,
    n_classes: usize,
}

impl MlpClassifier {
    /// New classifier with the given parameters.
    pub fn new(params: MlpParams) -> Self {
        Self {
            params,
            net: None,
            n_classes: 0,
        }
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &FeatureMatrix, y: &[usize], n_classes: usize) {
        assert_eq!(x.n_rows(), y.len());
        self.n_classes = n_classes;
        let mut net = Net::new(x.n_cols(), &self.params.hidden, n_classes, self.params.seed);
        let n = x.n_rows();
        if n > 0 {
            let mut order: Vec<usize> = (0..n).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(self.params.seed ^ 0xabcd);
            for _ in 0..self.params.epochs {
                order.shuffle(&mut rng);
                for batch in order.chunks(self.params.batch_size.max(1)) {
                    net.train_batch(
                        x,
                        batch,
                        self.params.learning_rate,
                        self.params.weight_decay,
                        |i, out| {
                            // dCE/dlogits = softmax(out) - onehot(y).
                            let mut p = out.to_vec();
                            softmax_inplace(&mut p);
                            p[y[i]] -= 1.0;
                            p
                        },
                    );
                }
            }
        }
        self.net = Some(net);
    }

    fn predict_one(&self, row: &[f64]) -> usize {
        let out = self.net.as_ref().expect("fit before predict").output(row);
        out.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn predict_proba_one(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let mut out = self.net.as_ref().expect("fit before predict").output(row);
        softmax_inplace(&mut out);
        out.resize(n_classes, 0.0);
        out
    }
}

/// MLP regressor (linear head, MSE loss).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpRegressor {
    /// Hyper-parameters.
    pub params: MlpParams,
    net: Option<Net>,
    /// Target standardization (fit on train targets for stable optimization).
    y_mean: f64,
    y_std: f64,
}

impl MlpRegressor {
    /// New regressor with the given parameters.
    pub fn new(params: MlpParams) -> Self {
        Self {
            params,
            net: None,
            y_mean: 0.0,
            y_std: 1.0,
        }
    }
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, x: &FeatureMatrix, y: &[f64]) {
        assert_eq!(x.n_rows(), y.len());
        let n = x.n_rows();
        self.y_mean = if n == 0 {
            0.0
        } else {
            y.iter().sum::<f64>() / n as f64
        };
        let var = if n == 0 {
            1.0
        } else {
            y.iter().map(|v| (v - self.y_mean).powi(2)).sum::<f64>() / n as f64
        };
        self.y_std = var.sqrt().max(1e-9);
        let yy: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_std).collect();

        let mut net = Net::new(x.n_cols(), &self.params.hidden, 1, self.params.seed);
        if n > 0 {
            let mut order: Vec<usize> = (0..n).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(self.params.seed ^ 0xbeef);
            for _ in 0..self.params.epochs {
                order.shuffle(&mut rng);
                for batch in order.chunks(self.params.batch_size.max(1)) {
                    net.train_batch(
                        x,
                        batch,
                        self.params.learning_rate,
                        self.params.weight_decay,
                        |i, out| vec![2.0 * (out[0] - yy[i])],
                    );
                }
            }
        }
        self.net = Some(net);
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        let out = self.net.as_ref().expect("fit before predict").output(row);
        out[0] * self.y_std + self.y_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn small_params() -> MlpParams {
        MlpParams {
            hidden: vec![16, 8],
            epochs: 120,
            learning_rate: 5e-3,
            ..MlpParams::default()
        }
    }

    fn blobs() -> (FeatureMatrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for c in 0..3usize {
            let (cx, cy) = [(0.0, 0.0), (3.0, 3.0), (0.0, 3.0)][c];
            for i in 0..25 {
                let dx = ((i * 29 + c * 13) % 20) as f64 / 20.0 - 0.5;
                let dy = ((i * 43 + c * 17) % 20) as f64 / 20.0 - 0.5;
                rows.push(vec![cx + dx, cy + dy]);
                y.push(c);
            }
        }
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn classifier_separates_blobs() {
        let (x, y) = blobs();
        let mut m = MlpClassifier::new(small_params());
        m.fit(&x, &y, 3);
        assert!(accuracy(&m.predict(&x), &y) > 0.95);
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let (x, y) = blobs();
        let mut m = MlpClassifier::new(small_params());
        m.fit(&x, &y, 3);
        let p = m.predict_proba_one(x.row(0), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (x, y) = blobs();
        let mut a = MlpClassifier::new(small_params());
        a.fit(&x, &y, 3);
        let mut b = MlpClassifier::new(small_params());
        b.fit(&x, &y, 3);
        assert_eq!(a.predict(&x), b.predict(&x));
        let mut c = MlpClassifier::new(MlpParams {
            seed: 99,
            ..small_params()
        });
        c.fit(&x, &y, 3);
        // Different seed may or may not change predictions, but must run.
        let _ = c.predict(&x);
    }

    #[test]
    fn regressor_fits_linear_function() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut m = MlpRegressor::new(small_params());
        m.fit(&x, &y);
        let pred = m.predict(&x);
        let rme: f64 = pred
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t).abs() / t.abs().max(0.5))
            .sum::<f64>()
            / y.len() as f64;
        assert!(rme < 0.15, "rme = {rme}");
    }

    #[test]
    fn regressor_standardizes_targets() {
        // Huge-scale targets should not break optimization.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| 1e6 + 1e4 * i as f64).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut m = MlpRegressor::new(small_params());
        m.fit(&x, &y);
        let p = m.predict_one(&[20.0]);
        assert!((p - 1.2e6).abs() < 1e5, "p = {p}");
    }

    #[test]
    fn paper_architecture_is_default() {
        assert_eq!(MlpParams::default().hidden, vec![96, 48, 16]);
        assert_eq!(MlpParams::default().batch_size, 16);
    }
}
