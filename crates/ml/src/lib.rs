//! # spmv-ml
//!
//! From-scratch machine learning for the SpMV format-selection study: the
//! four model families the paper compares (decision tree, SVM, MLP,
//! XGBoost-style gradient boosting) plus MLP ensembles, with the training
//! infrastructure around them (splits, k-fold CV, grid search, scaling,
//! metrics).
//!
//! Everything is deterministic given the seeds carried in each model's
//! parameter struct.
//!
//! ```
//! use spmv_ml::{Classifier, FeatureMatrix, GbtClassifier, GbtParams, accuracy};
//!
//! let x = FeatureMatrix::from_rows(&[
//!     vec![0.0], vec![1.0], vec![2.0], vec![3.0],
//!     vec![10.0], vec![11.0], vec![12.0], vec![13.0],
//! ]);
//! let y = vec![0, 0, 0, 0, 1, 1, 1, 1];
//! let mut m = GbtClassifier::new(GbtParams { n_estimators: 10, ..GbtParams::default() });
//! m.fit(&x, &y, 2);
//! assert_eq!(accuracy(&m.predict(&x), &y), 1.0);
//! ```

#![warn(missing_docs)]

pub mod data;
pub mod ensemble;
pub mod forest;
pub mod gbt;
pub mod gridsearch;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod online;
pub mod parallel;
pub mod reportcard;
pub mod scaler;
pub mod svm;
pub mod svr;
pub mod tree;

pub use data::{gather, kfold, stratified_split, train_test_split, FeatureMatrix, Split};
pub use ensemble::{MlpEnsembleClassifier, MlpEnsembleRegressor};
pub use forest::{ForestParams, RandomForestClassifier, RandomForestRegressor};
pub use gbt::{GbtClassifier, GbtParams, GbtRegressor, SplitMethod};
pub use gridsearch::{grid_search_classifier, grid_search_regressor, GridResult};
pub use metrics::{accuracy, confusion_matrix, relative_mean_error, slowdown, SlowdownTable};
pub use mlp::{MlpClassifier, MlpParams, MlpRegressor};
pub use model::{Classifier, Regressor};
pub use online::{fit_online_classifier, online_gbt_params};
pub use parallel::{thread_budget, CellPanic, Executor};
pub use reportcard::{classification_report, ClassStats, ClassificationReport};
pub use scaler::StandardScaler;
pub use svm::{SvmClassifier, SvmParams};
pub use svr::{SvrParams, SvrRegressor};
pub use tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};
