//! Classification report: per-class precision, recall, F1, and support,
//! plus a rendered confusion matrix — the diagnostics behind the paper's
//! aggregate accuracy numbers (which formats get confused with which).

use crate::metrics::confusion_matrix;

/// Per-class diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// Precision: of the samples predicted as this class, how many were.
    pub precision: f64,
    /// Recall: of the samples truly this class, how many were found.
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
    /// True-class sample count.
    pub support: usize,
}

/// Full classification report.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationReport {
    /// One entry per class, in class-index order.
    pub per_class: Vec<ClassStats>,
    /// Overall accuracy.
    pub accuracy: f64,
    /// Unweighted mean of per-class F1 ("macro F1").
    pub macro_f1: f64,
    /// Raw confusion counts, `confusion[truth][pred]`.
    pub confusion: Vec<Vec<usize>>,
}

/// Build a report from predictions and ground truth.
pub fn classification_report(
    pred: &[usize],
    truth: &[usize],
    n_classes: usize,
) -> ClassificationReport {
    let confusion = confusion_matrix(pred, truth, n_classes);
    let mut per_class = Vec::with_capacity(n_classes);
    #[allow(clippy::needless_range_loop)] // c indexes rows AND columns
    for c in 0..n_classes {
        let tp = confusion[c][c];
        let fp: usize = (0..n_classes)
            .filter(|&t| t != c)
            .map(|t| confusion[t][c])
            .sum();
        let fn_: usize = (0..n_classes)
            .filter(|&p| p != c)
            .map(|p| confusion[c][p])
            .sum();
        let support = tp + fn_;
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if support == 0 {
            0.0
        } else {
            tp as f64 / support as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        per_class.push(ClassStats {
            precision,
            recall,
            f1,
            support,
        });
    }
    let correct: usize = (0..n_classes).map(|c| confusion[c][c]).sum();
    let total: usize = pred.len();
    let scored: Vec<&ClassStats> = per_class.iter().filter(|s| s.support > 0).collect();
    let macro_f1 = if scored.is_empty() {
        0.0
    } else {
        scored.iter().map(|s| s.f1).sum::<f64>() / scored.len() as f64
    };
    ClassificationReport {
        per_class,
        accuracy: if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        },
        macro_f1,
        confusion,
    }
}

impl ClassificationReport {
    /// Render the report as an aligned text block; `class_names` labels the
    /// rows (pass format labels).
    pub fn render(&self, class_names: &[&str]) -> String {
        assert_eq!(class_names.len(), self.per_class.len());
        let mut out = String::new();
        let w = class_names
            .iter()
            .map(|n| n.len())
            .max()
            .unwrap_or(5)
            .max(5);
        out.push_str(&format!(
            "{:<w$}  {:>9}  {:>7}  {:>6}  {:>7}\n",
            "class", "precision", "recall", "f1", "support"
        ));
        for (name, s) in class_names.iter().zip(&self.per_class) {
            out.push_str(&format!(
                "{:<w$}  {:>9.2}  {:>7.2}  {:>6.2}  {:>7}\n",
                name, s.precision, s.recall, s.f1, s.support
            ));
        }
        out.push_str(&format!(
            "accuracy {:.2}  macro-F1 {:.2}\n\nconfusion (rows = truth):\n",
            self.accuracy, self.macro_f1
        ));
        out.push_str(&format!("{:<w$}", ""));
        for name in class_names {
            out.push_str(&format!(" {:>w$}", name));
        }
        out.push('\n');
        for (name, row) in class_names.iter().zip(&self.confusion) {
            out.push_str(&format!("{name:<w$}"));
            for v in row {
                out.push_str(&format!(" {v:>w$}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let r = classification_report(&[0, 1, 2, 1], &[0, 1, 2, 1], 3);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.macro_f1, 1.0);
        for s in &r.per_class {
            assert_eq!(s.f1, 1.0);
        }
    }

    #[test]
    fn hand_computed_case() {
        // truth: [0,0,1,1], pred: [0,1,1,1]
        let r = classification_report(&[0, 1, 1, 1], &[0, 0, 1, 1], 2);
        // class 0: tp 1, fp 0, fn 1 -> precision 1, recall .5, f1 2/3.
        let c0 = &r.per_class[0];
        assert!((c0.precision - 1.0).abs() < 1e-12);
        assert!((c0.recall - 0.5).abs() < 1e-12);
        assert!((c0.f1 - 2.0 / 3.0).abs() < 1e-12);
        // class 1: tp 2, fp 1, fn 0 -> precision 2/3, recall 1.
        let c1 = &r.per_class[1];
        assert!((c1.precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c1.recall, 1.0);
        assert_eq!(r.accuracy, 0.75);
    }

    #[test]
    fn absent_class_does_not_poison_macro_f1() {
        // Class 2 never occurs in truth; macro-F1 averages only classes
        // with support.
        let r = classification_report(&[0, 1], &[0, 1], 3);
        assert_eq!(r.per_class[2].support, 0);
        assert_eq!(r.macro_f1, 1.0);
    }

    #[test]
    fn render_contains_all_classes() {
        let r = classification_report(&[0, 1, 1], &[0, 1, 0], 2);
        let s = r.render(&["ELL", "CSR"]);
        assert!(s.contains("ELL"));
        assert!(s.contains("CSR"));
        assert!(s.contains("precision"));
        assert!(s.contains("confusion"));
    }

    #[test]
    #[should_panic]
    fn render_checks_name_count() {
        let r = classification_report(&[0], &[0], 2);
        r.render(&["only-one"]);
    }
}
