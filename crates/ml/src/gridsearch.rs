//! Grid search with k-fold cross-validation — the paper's
//! `GridSearchCV` step (§IV-D): "performs an exhaustive search over a range
//! of supplied parameters and finds the best parameter set".
//!
//! Every (candidate, fold) pair is an independent training cell, so the
//! search runs them through an [`Executor`]: cells are evaluated by a
//! worker pool into pre-allocated slots and the per-candidate score is
//! then accumulated in fold order, making scores and the winning
//! parameter set bit-identical at any thread count.

use crate::data::{gather, kfold, FeatureMatrix};
use crate::metrics::{accuracy, relative_mean_error};
use crate::model::{Classifier, Regressor};
use crate::parallel::Executor;

/// Result of a grid search: the winning parameter set and its CV score.
#[derive(Debug, Clone, PartialEq)]
pub struct GridResult<P> {
    /// Best parameter set.
    pub params: P,
    /// Its mean cross-validated score (accuracy, or negative RME).
    pub score: f64,
    /// Mean CV score of every candidate, in candidate order.
    pub all_scores: Vec<f64>,
}

fn pick_best<P: Clone>(candidates: &[P], all_scores: Vec<f64>) -> GridResult<P> {
    let best = all_scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty");
    GridResult {
        params: candidates[best].clone(),
        score: all_scores[best],
        all_scores,
    }
}

/// Exhaustive search over `candidates`, scoring each by mean k-fold CV
/// accuracy of the classifier `make` builds. Cells run on `exec`.
#[allow(clippy::too_many_arguments)] // mirrors sklearn's GridSearchCV surface
pub fn grid_search_classifier<P, M, F>(
    exec: &Executor,
    candidates: &[P],
    make: F,
    x: &FeatureMatrix,
    y: &[usize],
    n_classes: usize,
    k: usize,
    seed: u64,
) -> GridResult<P>
where
    P: Clone + Sync,
    M: Classifier,
    F: Fn(&P) -> M + Sync,
{
    assert!(!candidates.is_empty(), "need at least one candidate");
    let folds = kfold(x.n_rows(), k, seed);
    let nf = folds.len();
    let _span = spmv_observe::span!(
        "ml/gridsearch/classifier",
        cells = (candidates.len() * nf) as u64
    );
    let cells = exec.map(candidates.len() * nf, |c| {
        let (p, f) = (&candidates[c / nf], &folds[c % nf]);
        let mut m = make(p);
        m.fit(&x.select_rows(&f.train), &gather(y, &f.train), n_classes);
        let pred = m.predict(&x.select_rows(&f.test));
        accuracy(&pred, &gather(y, &f.test))
    });
    let all_scores: Vec<f64> = cells
        .chunks(nf)
        .map(|fold_scores| {
            let mut score = 0.0;
            for &a in fold_scores {
                score += a;
            }
            score / nf as f64
        })
        .collect();
    pick_best(candidates, all_scores)
}

/// Exhaustive search over `candidates`, scoring each by mean k-fold CV
/// **negative RME** of the regressor `make` builds (higher = better).
/// Cells run on `exec`.
pub fn grid_search_regressor<P, M, F>(
    exec: &Executor,
    candidates: &[P],
    make: F,
    x: &FeatureMatrix,
    y: &[f64],
    k: usize,
    seed: u64,
) -> GridResult<P>
where
    P: Clone + Sync,
    M: Regressor,
    F: Fn(&P) -> M + Sync,
{
    assert!(!candidates.is_empty(), "need at least one candidate");
    let folds = kfold(x.n_rows(), k, seed);
    let nf = folds.len();
    let _span = spmv_observe::span!(
        "ml/gridsearch/regressor",
        cells = (candidates.len() * nf) as u64
    );
    let cells = exec.map(candidates.len() * nf, |c| {
        let (p, f) = (&candidates[c / nf], &folds[c % nf]);
        let mut m = make(p);
        m.fit(&x.select_rows(&f.train), &gather(y, &f.train));
        let pred = m.predict(&x.select_rows(&f.test));
        relative_mean_error(&pred, &gather(y, &f.test))
    });
    let all_scores: Vec<f64> = cells
        .chunks(nf)
        .map(|fold_errors| {
            let mut score = 0.0;
            for &e in fold_errors {
                score -= e;
            }
            score / nf as f64
        })
        .collect();
    pick_best(candidates, all_scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};

    fn stripes() -> (FeatureMatrix, Vec<usize>) {
        // Label alternates every 4 units: needs depth >= 3 to fit well.
        let rows: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..120).map(|i| (i / 15) % 2).collect();
        (FeatureMatrix::from_rows(&rows), y)
    }

    fn depth_classifier(d: &usize) -> DecisionTreeClassifier {
        DecisionTreeClassifier::new(TreeParams {
            max_depth: *d,
            ..TreeParams::default()
        })
    }

    #[test]
    fn deeper_trees_win_when_needed() {
        let (x, y) = stripes();
        let candidates = vec![1usize, 2, 6];
        let r = grid_search_classifier(
            &Executor::serial(),
            &candidates,
            depth_classifier,
            &x,
            &y,
            2,
            5,
            42,
        );
        assert_eq!(r.params, 6);
        assert_eq!(r.all_scores.len(), 3);
        assert!(r.score >= r.all_scores[0]);
    }

    #[test]
    fn regressor_grid_prefers_capacity_for_steps() {
        let rows: Vec<Vec<f64>> = (0..90).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..90).map(|i| ((i / 10) + 1) as f64).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let r = grid_search_regressor(
            &Executor::serial(),
            &[1usize, 8],
            |&d| {
                DecisionTreeRegressor::new(TreeParams {
                    max_depth: d,
                    ..TreeParams::default()
                })
            },
            &x,
            &y,
            3,
            7,
        );
        assert_eq!(r.params, 8);
        // Negative-RME score: best should be close to zero.
        assert!(r.score > -0.1);
    }

    #[test]
    fn scores_are_thread_count_invariant() {
        let (x, y) = stripes();
        let candidates = vec![1usize, 2, 4, 6];
        let serial = grid_search_classifier(
            &Executor::serial(),
            &candidates,
            depth_classifier,
            &x,
            &y,
            2,
            5,
            42,
        );
        for threads in [2, 4, 8] {
            let par = grid_search_classifier(
                &Executor::new(threads),
                &candidates,
                depth_classifier,
                &x,
                &y,
                2,
                5,
                42,
            );
            // Bitwise equality, not approximate: the parallel schedule must
            // not change summation order.
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_grid_rejected() {
        let (x, y) = stripes();
        grid_search_classifier(
            &Executor::serial(),
            &Vec::<usize>::new(),
            depth_classifier,
            &x,
            &y,
            2,
            3,
            0,
        );
    }
}
