//! Grid search with k-fold cross-validation — the paper's
//! `GridSearchCV` step (§IV-D): "performs an exhaustive search over a range
//! of supplied parameters and finds the best parameter set".

use crate::data::{gather, kfold, FeatureMatrix};
use crate::metrics::{accuracy, relative_mean_error};
use crate::model::{Classifier, Regressor};

/// Result of a grid search: the winning parameter set and its CV score.
#[derive(Debug, Clone, PartialEq)]
pub struct GridResult<P> {
    /// Best parameter set.
    pub params: P,
    /// Its mean cross-validated score (accuracy, or negative RME).
    pub score: f64,
    /// Mean CV score of every candidate, in candidate order.
    pub all_scores: Vec<f64>,
}

/// Exhaustive search over `candidates`, scoring each by mean k-fold CV
/// accuracy of the classifier `make` builds.
pub fn grid_search_classifier<P, M, F>(
    candidates: &[P],
    make: F,
    x: &FeatureMatrix,
    y: &[usize],
    n_classes: usize,
    k: usize,
    seed: u64,
) -> GridResult<P>
where
    P: Clone,
    M: Classifier,
    F: Fn(&P) -> M,
{
    assert!(!candidates.is_empty(), "need at least one candidate");
    let folds = kfold(x.n_rows(), k, seed);
    let mut all_scores = Vec::with_capacity(candidates.len());
    for p in candidates {
        let mut score = 0.0;
        for f in &folds {
            let mut m = make(p);
            m.fit(&x.select_rows(&f.train), &gather(y, &f.train), n_classes);
            let pred = m.predict(&x.select_rows(&f.test));
            score += accuracy(&pred, &gather(y, &f.test));
        }
        all_scores.push(score / folds.len() as f64);
    }
    let best = all_scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty");
    GridResult {
        params: candidates[best].clone(),
        score: all_scores[best],
        all_scores,
    }
}

/// Exhaustive search over `candidates`, scoring each by mean k-fold CV
/// **negative RME** of the regressor `make` builds (higher = better).
pub fn grid_search_regressor<P, M, F>(
    candidates: &[P],
    make: F,
    x: &FeatureMatrix,
    y: &[f64],
    k: usize,
    seed: u64,
) -> GridResult<P>
where
    P: Clone,
    M: Regressor,
    F: Fn(&P) -> M,
{
    assert!(!candidates.is_empty(), "need at least one candidate");
    let folds = kfold(x.n_rows(), k, seed);
    let mut all_scores = Vec::with_capacity(candidates.len());
    for p in candidates {
        let mut score = 0.0;
        for f in &folds {
            let mut m = make(p);
            m.fit(&x.select_rows(&f.train), &gather(y, &f.train));
            let pred = m.predict(&x.select_rows(&f.test));
            score -= relative_mean_error(&pred, &gather(y, &f.test));
        }
        all_scores.push(score / folds.len() as f64);
    }
    let best = all_scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty");
    GridResult {
        params: candidates[best].clone(),
        score: all_scores[best],
        all_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};

    fn stripes() -> (FeatureMatrix, Vec<usize>) {
        // Label alternates every 4 units: needs depth >= 3 to fit well.
        let rows: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..120).map(|i| (i / 15) % 2).collect();
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn deeper_trees_win_when_needed() {
        let (x, y) = stripes();
        let candidates = vec![1usize, 2, 6];
        let r = grid_search_classifier(
            &candidates,
            |&d| {
                DecisionTreeClassifier::new(TreeParams {
                    max_depth: d,
                    ..TreeParams::default()
                })
            },
            &x,
            &y,
            2,
            5,
            42,
        );
        assert_eq!(r.params, 6);
        assert_eq!(r.all_scores.len(), 3);
        assert!(r.score >= r.all_scores[0]);
    }

    #[test]
    fn regressor_grid_prefers_capacity_for_steps() {
        let rows: Vec<Vec<f64>> = (0..90).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..90).map(|i| ((i / 10) + 1) as f64).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let r = grid_search_regressor(
            &[1usize, 8],
            |&d| {
                DecisionTreeRegressor::new(TreeParams {
                    max_depth: d,
                    ..TreeParams::default()
                })
            },
            &x,
            &y,
            3,
            7,
        );
        assert_eq!(r.params, 8);
        // Negative-RME score: best should be close to zero.
        assert!(r.score > -0.1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_grid_rejected() {
        let (x, y) = stripes();
        grid_search_classifier(
            &Vec::<usize>::new(),
            |_| DecisionTreeClassifier::new(TreeParams::default()),
            &x,
            &y,
            2,
            3,
            0,
        );
    }
}
