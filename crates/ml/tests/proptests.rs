//! Property-based tests for the ML stack: metric identities, split
//! invariants, scaler algebra, and model sanity on arbitrary data.

use proptest::prelude::*;
use spmv_ml::{
    accuracy, confusion_matrix, kfold, relative_mean_error, stratified_split, train_test_split,
    Classifier, DecisionTreeClassifier, DecisionTreeRegressor, FeatureMatrix, Regressor,
    SlowdownTable, StandardScaler, TreeParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn accuracy_equals_confusion_trace(
        labels in proptest::collection::vec((0usize..5, 0usize..5), 1..100)
    ) {
        let (pred, truth): (Vec<usize>, Vec<usize>) = labels.into_iter().unzip();
        let acc = accuracy(&pred, &truth);
        let cm = confusion_matrix(&pred, &truth, 5);
        let trace: usize = (0..5).map(|i| cm[i][i]).sum();
        prop_assert!((acc - trace as f64 / pred.len() as f64).abs() < 1e-12);
        let total: usize = cm.iter().flatten().sum();
        prop_assert_eq!(total, pred.len());
    }

    #[test]
    fn rme_is_nonnegative_and_zero_iff_exact(
        measured in proptest::collection::vec(0.1f64..100.0, 1..50),
        noise in proptest::collection::vec(-0.5f64..0.5, 1..50)
    ) {
        let n = measured.len().min(noise.len());
        let measured = &measured[..n];
        let pred: Vec<f64> = measured.iter().zip(&noise[..n]).map(|(m, d)| m * (1.0 + d)).collect();
        let rme = relative_mean_error(&pred, measured);
        prop_assert!(rme >= 0.0);
        // RME of relative perturbations equals mean |perturbation|.
        let expect: f64 = noise[..n].iter().map(|d| d.abs()).sum::<f64>() / n as f64;
        prop_assert!((rme - expect).abs() < 1e-9, "rme {rme} vs {expect}");
        prop_assert_eq!(relative_mean_error(measured, measured), 0.0);
    }

    #[test]
    fn splits_partition_indices(n in 2usize..300, frac in 0.05f64..0.6, seed in 0u64..50) {
        let s = train_test_split(n, frac, seed);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn stratified_split_preserves_every_class(
        labels in proptest::collection::vec(0usize..4, 20..200),
        seed in 0u64..20
    ) {
        let s = stratified_split(&labels, 0.25, seed);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all.len(), labels.len());
        // Any class with >= 4 members keeps at least one sample in train.
        for c in 0..4 {
            let members = labels.iter().filter(|&&l| l == c).count();
            if members >= 4 {
                let in_train = s.train.iter().filter(|&&i| labels[i] == c).count();
                prop_assert!(in_train >= 1, "class {c} lost from train");
            }
        }
    }

    #[test]
    fn kfold_tests_each_sample_once(n in 4usize..200, k in 2usize..6, seed in 0u64..20) {
        let folds = kfold(n, k, seed);
        let mut seen = vec![0usize; n];
        for f in &folds {
            for &i in &f.test {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn scaler_standardizes_any_matrix(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e3f64..1e3, 3..=3), 2..60
        )
    ) {
        let mut x = FeatureMatrix::from_rows(&rows);
        StandardScaler::fit_transform(&mut x);
        for j in 0..3 {
            let n = x.n_rows() as f64;
            let mean: f64 = (0..x.n_rows()).map(|i| x.get(i, j)).sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-6, "col {j} mean {mean}");
            let var: f64 = (0..x.n_rows()).map(|i| x.get(i, j).powi(2)).sum::<f64>() / n;
            // Either standardized (var 1) or the column was constant (var 0).
            prop_assert!(var < 1.0 + 1e-6, "col {j} var {var}");
        }
    }

    #[test]
    fn slowdown_table_counts_are_consistent(
        pairs in proptest::collection::vec((0.1f64..10.0, 0.1f64..10.0), 0..80)
    ) {
        // Force best <= chosen by sorting the pair.
        let pairs: Vec<(f64, f64)> = pairs
            .into_iter()
            .map(|(a, b)| (a.max(b), a.min(b)))
            .collect();
        let t = SlowdownTable::tally(&pairs, 1e-9);
        prop_assert_eq!(t.none + t.above_1x, pairs.len());
        prop_assert!(t.above_1x >= t.above_1_2x);
        prop_assert!(t.above_1_2x >= t.above_1_5x);
        prop_assert!(t.above_1_5x >= t.above_2x);
    }

    #[test]
    fn tree_classifier_predictions_stay_in_range(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 2..=2), 4..60
        ),
        seed in 0u64..10
    ) {
        let y: Vec<usize> = (0..rows.len()).map(|i| (i as u64 + seed) as usize % 3).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut t = DecisionTreeClassifier::new(TreeParams::default());
        t.fit(&x, &y, 3);
        for p in t.predict(&x) {
            prop_assert!(p < 3);
        }
    }

    #[test]
    fn tree_regressor_interpolates_within_target_range(
        targets in proptest::collection::vec(-50.0f64..50.0, 4..60)
    ) {
        let rows: Vec<Vec<f64>> = (0..targets.len()).map(|i| vec![i as f64]).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mut t = DecisionTreeRegressor::new(TreeParams::default());
        t.fit(&x, &targets);
        let lo = targets.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..targets.len() {
            let p = t.predict_one(&[i as f64]);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "prediction {p} outside [{lo}, {hi}]");
        }
    }
}
