//! The native SpMV kernels: one per [`PreparedMatrix`] variant.
//!
//! All kernels compute `y = A·x` from scratch (no `y` accumulation
//! across calls) and are sequential — labeling measures single-kernel
//! throughput, the quantity the format-selection models predict.
//! Portable paths use 4-wide unrolled inner loops; CSR and ELL/HYB
//! additionally dispatch to AVX2/FMA specializations via
//! [`SimdKernels`] when [`SimdLevel::Avx2`] is requested and the CPU
//! supports it. Two kernels restructure the `x`-gather for cache
//! residency: wide CSR matrices run column-strip streams
//! ([`PreparedMatrix::CsrBlocked`]) and ELL/HYB planes run a row-tiled
//! column-major traversal ([`crate::simd::ELL_ROW_TILE`]).
//!
//! Reduction order differs between kernels (blocking, unrolling, and
//! vector lanes all reassociate the row sums), so outputs agree with the
//! reference CSR kernel to relative tolerance, not bitwise — see the
//! differential tests.

use crate::prep::{
    CooExec, Csr5Exec, CsrBlockedExec, CsrExec, EllExec, HybExec, MergeExec, PreparedMatrix,
    MAX_OMEGA,
};
use crate::simd::{SimdKernels, ELL_ROW_TILE};
use crate::SimdLevel;
use spmv_matrix::Scalar;

/// Compute `y = A·x` for a prepared matrix at the requested SIMD tier.
///
/// `x.len()` must cover every column index and `y.len()` must equal the
/// matrix's row count. [`SimdLevel::Avx2`] silently degrades to the
/// scalar path when the element type has no vector kernel or the CPU
/// lacks the features.
pub fn spmv<T: SimdKernels>(m: &PreparedMatrix<'_, T>, x: &[T], y: &mut [T], level: SimdLevel) {
    match m {
        PreparedMatrix::Coo(v) => coo(v, x, y),
        PreparedMatrix::Csr(v) => csr(v, x, y, level),
        PreparedMatrix::CsrBlocked(v) => csr_blocked(v, x, y),
        PreparedMatrix::Ell(v) => ell(v, x, y, level),
        PreparedMatrix::Hyb(v) => hyb(v, x, y, level),
        PreparedMatrix::MergeCsr(v) => merge_csr(v, x, y),
        PreparedMatrix::Csr5(v) => csr5(v, x, y),
    }
}

/// COO: stream the triplets, accumulating each row-major run locally so
/// `y` sees one write per occupied row.
fn coo<T: Scalar>(v: &CooExec<'_, T>, x: &[T], y: &mut [T]) {
    assert_eq!(y.len(), v.n_rows);
    y.fill(T::ZERO);
    let nnz = v.vals.len();
    let mut i = 0;
    while i < nnz {
        let r = v.rows[i];
        let mut acc = T::ZERO;
        while i < nnz && v.rows[i] == r {
            acc += v.vals[i] * x[v.cols[i] as usize];
            i += 1;
        }
        y[r as usize] += acc;
    }
}

/// CSR: row-sequential dot products, 4-wide unrolled with paired
/// accumulators; AVX2 gather+FMA when requested and available.
fn csr<T: SimdKernels>(v: &CsrExec<'_, T>, x: &[T], y: &mut [T], level: SimdLevel) {
    assert_eq!(y.len(), v.n_rows);
    if level == SimdLevel::Avx2 && T::csr_simd(v.row_ptr, v.col_idx, v.vals, x, y) {
        return;
    }
    for (r, w) in v.row_ptr.windows(2).enumerate() {
        let (s, e) = (w[0] as usize, w[1] as usize);
        let (mut a0, mut a1, mut a2, mut a3) = (T::ZERO, T::ZERO, T::ZERO, T::ZERO);
        let mut i = s;
        while i + 4 <= e {
            a0 += v.vals[i] * x[v.col_idx[i] as usize];
            a1 += v.vals[i + 1] * x[v.col_idx[i + 1] as usize];
            a2 += v.vals[i + 2] * x[v.col_idx[i + 2] as usize];
            a3 += v.vals[i + 3] * x[v.col_idx[i + 3] as usize];
            i += 4;
        }
        let mut acc = (a0 + a1) + (a2 + a3);
        while i < e {
            acc += v.vals[i] * x[v.col_idx[i] as usize];
            i += 1;
        }
        y[r] = acc;
    }
}

/// Cache-blocked CSR: each column strip's `x` window stays cache-resident
/// while its triplets stream; rows accumulate across strips in `y`.
fn csr_blocked<T: Scalar>(v: &CsrBlockedExec<'_, T>, x: &[T], y: &mut [T]) {
    assert_eq!(y.len(), v.n_rows);
    y.fill(T::ZERO);
    for w in v.strip_ptr.windows(2) {
        let (s, e) = (w[0] as usize, w[1] as usize);
        let mut i = s;
        while i + 4 <= e {
            y[v.rows[i] as usize] += v.vals[i] * x[v.cols[i] as usize];
            y[v.rows[i + 1] as usize] += v.vals[i + 1] * x[v.cols[i + 1] as usize];
            y[v.rows[i + 2] as usize] += v.vals[i + 2] * x[v.cols[i + 2] as usize];
            y[v.rows[i + 3] as usize] += v.vals[i + 3] * x[v.cols[i + 3] as usize];
            i += 4;
        }
        while i < e {
            y[v.rows[i] as usize] += v.vals[i] * x[v.cols[i] as usize];
            i += 1;
        }
    }
}

/// ELL: zero `y`, then accumulate the padded planes (padding contributes
/// exact zeros).
fn ell<T: SimdKernels>(v: &EllExec<'_, T>, x: &[T], y: &mut [T], level: SimdLevel) {
    assert_eq!(y.len(), v.n_rows);
    y.fill(T::ZERO);
    ell_accumulate(v, x, y, level);
}

/// The shared ELL accumulation pass (also the HYB head): row-tiled
/// column-major traversal so plane chunks stream sequentially while the
/// `y` tile stays L1-resident.
fn ell_accumulate<T: SimdKernels>(v: &EllExec<'_, T>, x: &[T], y: &mut [T], level: SimdLevel) {
    if level == SimdLevel::Avx2 && T::ell_simd(v.n_rows, v.width, v.col_plane, v.val_plane, x, y) {
        return;
    }
    let mut t0 = 0usize;
    while t0 < v.n_rows {
        let t1 = (t0 + ELL_ROW_TILE).min(v.n_rows);
        for k in 0..v.width {
            let base = k * v.n_rows;
            let cols = &v.col_plane[base + t0..base + t1];
            let vals = &v.val_plane[base + t0..base + t1];
            let yt = &mut y[t0..t1];
            let n = yt.len();
            let mut r = 0;
            while r + 4 <= n {
                yt[r] += vals[r] * x[cols[r] as usize];
                yt[r + 1] += vals[r + 1] * x[cols[r + 1] as usize];
                yt[r + 2] += vals[r + 2] * x[cols[r + 2] as usize];
                yt[r + 3] += vals[r + 3] * x[cols[r + 3] as usize];
                r += 4;
            }
            while r < n {
                yt[r] += vals[r] * x[cols[r] as usize];
                r += 1;
            }
        }
        t0 = t1;
    }
}

/// HYB: ELL head pass over zeroed `y`, then the COO tail accumulates its
/// row-major runs on top.
fn hyb<T: SimdKernels>(v: &HybExec<'_, T>, x: &[T], y: &mut [T], level: SimdLevel) {
    assert_eq!(y.len(), v.head.n_rows);
    y.fill(T::ZERO);
    ell_accumulate(&v.head, x, y, level);
    let nnz = v.tail.vals.len();
    let mut i = 0;
    while i < nnz {
        let r = v.tail.rows[i];
        let mut acc = T::ZERO;
        while i < nnz && v.tail.rows[i] == r {
            acc += v.tail.vals[i] * x[v.tail.cols[i] as usize];
            i += 1;
        }
        y[r as usize] += acc;
    }
}

/// Merge-based CSR: consume the precomputed equal-work merge-path
/// segments in order, threading the open-row partial sum into the next
/// segment (the sequential analogue of the parallel fix-up pass). Row
/// entries are summed in index order, matching the reference kernel.
fn merge_csr<T: Scalar>(v: &MergeExec<'_, T>, x: &[T], y: &mut [T]) {
    assert_eq!(y.len(), v.csr.n_rows);
    let mut carry = T::ZERO;
    let mut carry_row = usize::MAX;
    for w in v.segs.windows(2) {
        let (start, end) = (w[0], w[1]);
        let mut i = start.nz;
        let mut acc = if start.row == carry_row {
            carry
        } else {
            T::ZERO
        };
        // Finish every row whose row item lies inside this segment…
        // (`r` indexes both `row_ptr[r + 1]` and `y[r]`; an iterator
        // rewrite would hide the paired access.)
        #[allow(clippy::needless_range_loop)]
        for r in start.row..end.row {
            let re = v.csr.row_ptr[r + 1] as usize;
            while i < re {
                acc += v.csr.vals[i] * x[v.csr.col_idx[i] as usize];
                i += 1;
            }
            y[r] = acc;
            acc = T::ZERO;
        }
        // …then the leading slice of the row left open at the boundary.
        while i < end.nz {
            acc += v.csr.vals[i] * x[v.csr.col_idx[i] as usize];
            i += 1;
        }
        carry = acc;
        carry_row = end.row;
    }
}

/// CSR5: sweep each transposed tile step-major with per-lane row cursors
/// and partial sums; every flush adds into zeroed `y`, so row spans
/// crossing lanes or tiles combine correctly. The sub-tile remainder
/// runs as a CSR walk.
fn csr5<T: Scalar>(v: &Csr5Exec<'_, T>, x: &[T], y: &mut [T]) {
    assert_eq!(y.len(), v.n_rows);
    assert!(v.omega <= MAX_OMEGA, "CSR5 tile width exceeds kernel cap");
    y.fill(T::ZERO);
    let tile_nnz = v.omega * v.sigma;
    let mut lane_row = [0usize; MAX_OMEGA];
    let mut lane_acc = [T::ZERO; MAX_OMEGA];
    for t in 0..v.n_tiles {
        let base = t * tile_nnz;
        // Seed each lane's row cursor with one monotone walk per tile.
        let mut r = v.tile_rows[t] as usize;
        for (lane, lr) in lane_row[..v.omega].iter_mut().enumerate() {
            let g = (base + lane * v.sigma) as u32;
            while v.row_ptr[r + 1] <= g {
                r += 1;
            }
            *lr = r;
        }
        lane_acc[..v.omega].fill(T::ZERO);
        for s in 0..v.sigma {
            let off = base + s * v.omega;
            for lane in 0..v.omega {
                // Original CSR position of this transposed slot.
                let g = base + lane * v.sigma + s;
                let cur = &mut lane_row[lane];
                while g >= v.row_ptr[*cur + 1] as usize {
                    y[*cur] += lane_acc[lane];
                    lane_acc[lane] = T::ZERO;
                    *cur += 1;
                }
                lane_acc[lane] += v.vals_t[off + lane] * x[v.cols_t[off + lane] as usize];
            }
        }
        for lane in 0..v.omega {
            y[lane_row[lane]] += lane_acc[lane];
        }
    }
    // Tail: the final `nnz % tile_nnz` entries in CSR order.
    let tail_start = v.n_tiles * tile_nnz;
    let mut r = v.tile_rows[v.n_tiles] as usize;
    for (j, (&c, &val)) in v.tail_cols.iter().zip(v.tail_vals.iter()).enumerate() {
        let g = tail_start + j;
        while g >= v.row_ptr[r + 1] as usize {
            r += 1;
        }
        y[r] += val * x[c as usize];
    }
}
