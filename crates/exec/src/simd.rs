//! Runtime-dispatched AVX2/FMA kernel specializations.
//!
//! [`SimdKernels`] extends [`Scalar`] with per-format vector kernels that
//! return `true` when they ran and `false` when the CPU lacks the
//! required features (or the element type has no vector path), in which
//! case the caller falls back to the portable scalar kernel. Every
//! override re-probes `is_x86_feature_detected!` on entry — the probe is
//! cached by `std`, so the check is a load, and it makes
//! [`crate::SimdLevel::Avx2`] safe to request on any machine.
//!
//! Vector paths exist for the two formats where CPU SIMD pays off
//! directly: CSR (per-row gather + FMA dot products) and ELL (row-block
//! vertical FMA over the column-major planes, which also serves the HYB
//! head). COO/merge streams are carry-dependent and CSR5's per-lane row
//! bookkeeping is branchy, so those stay scalar on the host.

use spmv_matrix::Scalar;

/// Row-tile height for the ELL/HYB column-major traversal: the `y` and
/// row windows stay L1-resident while the padded planes stream
/// sequentially one tile-column chunk at a time.
pub const ELL_ROW_TILE: usize = 2048;

/// Scalar element with optional vector kernels.
///
/// Default implementations decline (`false`); `f32`/`f64` override them
/// with AVX2/FMA paths on `x86_64`.
pub trait SimdKernels: Scalar {
    /// Vectorized CSR row-sequential kernel (`y[r] = Σ row r`).
    /// Returns `false` when no vector path is available.
    #[allow(unused_variables)]
    fn csr_simd(
        row_ptr: &[u32],
        col_idx: &[u32],
        vals: &[Self],
        x: &[Self],
        y: &mut [Self],
    ) -> bool {
        false
    }

    /// Vectorized ELL plane kernel: **accumulates** `y[r] += Σ_k
    /// plane[k][r] · x[col[k][r]]` over pre-zeroed (or partially
    /// accumulated) `y`. Returns `false` when no vector path is
    /// available.
    #[allow(unused_variables)]
    fn ell_simd(
        n_rows: usize,
        width: usize,
        col_plane: &[u32],
        val_plane: &[Self],
        x: &[Self],
        y: &mut [Self],
    ) -> bool {
        false
    }
}

#[cfg(target_arch = "x86_64")]
macro_rules! avx2_ready {
    () => {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    };
}

impl SimdKernels for f64 {
    fn csr_simd(row_ptr: &[u32], col_idx: &[u32], vals: &[f64], x: &[f64], y: &mut [f64]) -> bool {
        #[cfg(target_arch = "x86_64")]
        if avx2_ready!() {
            // SAFETY: AVX2+FMA confirmed by the runtime probe above; the
            // matrix invariants guarantee every column index is in
            // bounds for `x`.
            unsafe { x86::csr_f64(row_ptr, col_idx, vals, x, y) };
            return true;
        }
        false
    }

    fn ell_simd(
        n_rows: usize,
        width: usize,
        col_plane: &[u32],
        val_plane: &[f64],
        x: &[f64],
        y: &mut [f64],
    ) -> bool {
        #[cfg(target_arch = "x86_64")]
        if avx2_ready!() {
            // SAFETY: as above; padding slots hold column 0 / value 0.
            unsafe { x86::ell_f64(n_rows, width, col_plane, val_plane, x, y) };
            return true;
        }
        false
    }
}

impl SimdKernels for f32 {
    fn csr_simd(row_ptr: &[u32], col_idx: &[u32], vals: &[f32], x: &[f32], y: &mut [f32]) -> bool {
        #[cfg(target_arch = "x86_64")]
        if avx2_ready!() {
            // SAFETY: see the f64 implementation.
            unsafe { x86::csr_f32(row_ptr, col_idx, vals, x, y) };
            return true;
        }
        false
    }

    fn ell_simd(
        n_rows: usize,
        width: usize,
        col_plane: &[u32],
        val_plane: &[f32],
        x: &[f32],
        y: &mut [f32],
    ) -> bool {
        #[cfg(target_arch = "x86_64")]
        if avx2_ready!() {
            // SAFETY: see the f64 implementation.
            unsafe { x86::ell_f32(n_rows, width, col_plane, val_plane, x, y) };
            return true;
        }
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The `std::arch` kernel bodies. All functions require AVX2 + FMA
    //! (enforced by the callers' runtime probe) and column indices in
    //! bounds for `x`.

    use super::ELL_ROW_TILE;
    use std::arch::x86_64::*;

    /// Horizontal sum of a 4×f64 accumulator.
    #[inline]
    unsafe fn hsum_pd(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd::<1>(v);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// Horizontal sum of an 8×f32 accumulator.
    #[inline]
    unsafe fn hsum_ps(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        let s4 = _mm_add_ps(lo, hi);
        let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
        let s1 = _mm_add_ss(s2, _mm_shuffle_ps::<1>(s2, s2));
        _mm_cvtss_f32(s1)
    }

    /// CSR, f64: per row, 4-wide gather + FMA dot product. Four gathers
    /// and four accumulators are kept in flight per 16-element iteration:
    /// the gathers are independent, so the out-of-order core overlaps
    /// their L2 latency instead of serializing on one accumulator chain.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn csr_f64(
        row_ptr: &[u32],
        col_idx: &[u32],
        vals: &[f64],
        x: &[f64],
        y: &mut [f64],
    ) {
        let xp = x.as_ptr();
        for r in 0..y.len() {
            let s = *row_ptr.get_unchecked(r) as usize;
            let e = *row_ptr.get_unchecked(r + 1) as usize;
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut acc2 = _mm256_setzero_pd();
            let mut acc3 = _mm256_setzero_pd();
            let mut i = s;
            while i + 16 <= e {
                // The val/col streams come out of L3 at large nnz while
                // the gathers occupy the load ports; prefetching a few
                // hundred elements ahead keeps the streams from stalling
                // behind them.
                _mm_prefetch::<_MM_HINT_T0>(vals.as_ptr().add(i + 1024) as *const i8);
                _mm_prefetch::<_MM_HINT_T0>(col_idx.as_ptr().add(i + 2048) as *const i8);
                let idx0 = _mm_loadu_si128(col_idx.as_ptr().add(i) as *const __m128i);
                let idx1 = _mm_loadu_si128(col_idx.as_ptr().add(i + 4) as *const __m128i);
                let idx2 = _mm_loadu_si128(col_idx.as_ptr().add(i + 8) as *const __m128i);
                let idx3 = _mm_loadu_si128(col_idx.as_ptr().add(i + 12) as *const __m128i);
                let xv0 = _mm256_i32gather_pd::<8>(xp, idx0);
                let xv1 = _mm256_i32gather_pd::<8>(xp, idx1);
                let xv2 = _mm256_i32gather_pd::<8>(xp, idx2);
                let xv3 = _mm256_i32gather_pd::<8>(xp, idx3);
                let av0 = _mm256_loadu_pd(vals.as_ptr().add(i));
                let av1 = _mm256_loadu_pd(vals.as_ptr().add(i + 4));
                let av2 = _mm256_loadu_pd(vals.as_ptr().add(i + 8));
                let av3 = _mm256_loadu_pd(vals.as_ptr().add(i + 12));
                acc0 = _mm256_fmadd_pd(av0, xv0, acc0);
                acc1 = _mm256_fmadd_pd(av1, xv1, acc1);
                acc2 = _mm256_fmadd_pd(av2, xv2, acc2);
                acc3 = _mm256_fmadd_pd(av3, xv3, acc3);
                i += 16;
            }
            while i + 4 <= e {
                let idx = _mm_loadu_si128(col_idx.as_ptr().add(i) as *const __m128i);
                let xv = _mm256_i32gather_pd::<8>(xp, idx);
                let av = _mm256_loadu_pd(vals.as_ptr().add(i));
                acc0 = _mm256_fmadd_pd(av, xv, acc0);
                i += 4;
            }
            let mut sum = hsum_pd(_mm256_add_pd(
                _mm256_add_pd(acc0, acc1),
                _mm256_add_pd(acc2, acc3),
            ));
            while i < e {
                sum +=
                    *vals.get_unchecked(i) * *x.get_unchecked(*col_idx.get_unchecked(i) as usize);
                i += 1;
            }
            *y.get_unchecked_mut(r) = sum;
        }
    }

    /// CSR, f32: per row, 8-wide gather + FMA dot product with two
    /// accumulators, scalar remainder.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn csr_f32(
        row_ptr: &[u32],
        col_idx: &[u32],
        vals: &[f32],
        x: &[f32],
        y: &mut [f32],
    ) {
        let xp = x.as_ptr();
        for r in 0..y.len() {
            let s = *row_ptr.get_unchecked(r) as usize;
            let e = *row_ptr.get_unchecked(r + 1) as usize;
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut i = s;
            while i + 16 <= e {
                let idx0 = _mm256_loadu_si256(col_idx.as_ptr().add(i) as *const __m256i);
                let idx1 = _mm256_loadu_si256(col_idx.as_ptr().add(i + 8) as *const __m256i);
                let xv0 = _mm256_i32gather_ps::<4>(xp, idx0);
                let xv1 = _mm256_i32gather_ps::<4>(xp, idx1);
                let av0 = _mm256_loadu_ps(vals.as_ptr().add(i));
                let av1 = _mm256_loadu_ps(vals.as_ptr().add(i + 8));
                acc0 = _mm256_fmadd_ps(av0, xv0, acc0);
                acc1 = _mm256_fmadd_ps(av1, xv1, acc1);
                i += 16;
            }
            if i + 8 <= e {
                let idx = _mm256_loadu_si256(col_idx.as_ptr().add(i) as *const __m256i);
                let xv = _mm256_i32gather_ps::<4>(xp, idx);
                let av = _mm256_loadu_ps(vals.as_ptr().add(i));
                acc0 = _mm256_fmadd_ps(av, xv, acc0);
                i += 8;
            }
            let mut sum = hsum_ps(_mm256_add_ps(acc0, acc1));
            while i < e {
                sum +=
                    *vals.get_unchecked(i) * *x.get_unchecked(*col_idx.get_unchecked(i) as usize);
                i += 1;
            }
            *y.get_unchecked_mut(r) = sum;
        }
    }

    /// ELL, f64: row-tiled column-major traversal. Within a tile each
    /// plane column chunk streams sequentially while the `y` window stays
    /// in L1; rows advance 4 at a time (contiguous value/column loads,
    /// gathered `x`). Accumulates into `y`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn ell_f64(
        n_rows: usize,
        width: usize,
        col_plane: &[u32],
        val_plane: &[f64],
        x: &[f64],
        y: &mut [f64],
    ) {
        let xp = x.as_ptr();
        let mut t0 = 0usize;
        while t0 < n_rows {
            let t1 = (t0 + ELL_ROW_TILE).min(n_rows);
            for k in 0..width {
                let base = k * n_rows;
                let mut r = t0;
                while r + 4 <= t1 {
                    let av = _mm256_loadu_pd(val_plane.as_ptr().add(base + r));
                    let idx = _mm_loadu_si128(col_plane.as_ptr().add(base + r) as *const __m128i);
                    let xv = _mm256_i32gather_pd::<8>(xp, idx);
                    let yv = _mm256_loadu_pd(y.as_ptr().add(r));
                    _mm256_storeu_pd(y.as_mut_ptr().add(r), _mm256_fmadd_pd(av, xv, yv));
                    r += 4;
                }
                while r < t1 {
                    *y.get_unchecked_mut(r) += *val_plane.get_unchecked(base + r)
                        * *x.get_unchecked(*col_plane.get_unchecked(base + r) as usize);
                    r += 1;
                }
            }
            t0 = t1;
        }
    }

    /// ELL, f32: as [`ell_f64`] with 8-row blocks.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn ell_f32(
        n_rows: usize,
        width: usize,
        col_plane: &[u32],
        val_plane: &[f32],
        x: &[f32],
        y: &mut [f32],
    ) {
        let xp = x.as_ptr();
        let mut t0 = 0usize;
        while t0 < n_rows {
            let t1 = (t0 + ELL_ROW_TILE).min(n_rows);
            for k in 0..width {
                let base = k * n_rows;
                let mut r = t0;
                while r + 8 <= t1 {
                    let av = _mm256_loadu_ps(val_plane.as_ptr().add(base + r));
                    let idx =
                        _mm256_loadu_si256(col_plane.as_ptr().add(base + r) as *const __m256i);
                    let xv = _mm256_i32gather_ps::<4>(xp, idx);
                    let yv = _mm256_loadu_ps(y.as_ptr().add(r));
                    _mm256_storeu_ps(y.as_mut_ptr().add(r), _mm256_fmadd_ps(av, xv, yv));
                    r += 8;
                }
                while r < t1 {
                    *y.get_unchecked_mut(r) += *val_plane.get_unchecked(base + r)
                        * *x.get_unchecked(*col_plane.get_unchecked(base + r) as usize);
                    r += 1;
                }
            }
            t0 = t1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_matches_probe() {
        // The vector paths run exactly when the CPU probe says Avx2, for
        // both element types, so dispatch can trust the return value.
        let probe = crate::SimdLevel::detect() == crate::SimdLevel::Avx2;
        assert_eq!(f64::csr_simd(&[0, 0], &[], &[], &[1.0], &mut [0.0]), probe);
        assert_eq!(f32::csr_simd(&[0, 0], &[], &[], &[1.0], &mut [0.0]), probe);
        assert_eq!(f64::ell_simd(1, 0, &[], &[], &[1.0], &mut [0.0]), probe);
        assert_eq!(f32::ell_simd(1, 0, &[], &[], &[1.0], &mut [0.0]), probe);
    }
}
