//! Calibrated kernel timing plus the deterministic synthetic stand-in.
//!
//! Real measurement ([`ExecMode::Measured`]) uses the monotonic
//! [`std::time::Instant`] clock: a few warmup products to fault pages
//! and warm caches, then `samples` timed batches of `repeats` products
//! each, where `repeats` scales inversely with nnz so a tiny matrix is
//! timed over many products and a large one over few — every sample
//! covers roughly the same flop budget, keeping clock-granularity error
//! bounded. The reported time is the **median** sample (robust against
//! scheduler preemption spikes, which only ever slow a sample down).
//!
//! Measured times are inherently noisy, so CI replays the pipeline in
//! [`ExecMode::Synthetic`]: [`synthetic_time`] produces pseudo-times
//! that are a pure function of the matrix key, the format's structural
//! work terms, precision, and SIMD tier — machine-independent,
//! byte-reproducible, and shaped so the "best format" varies across
//! matrices and tiers the way real measurements do.

use crate::prep::PreparedMatrix;
use crate::simd::SimdKernels;
use crate::SimdLevel;
use spmv_matrix::Scalar;
use std::time::Instant;

/// How label times are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Run and time the kernels on this machine.
    Measured,
    /// Deterministic pseudo-measurements (CI replay); the seed folds
    /// into every generated time.
    Synthetic {
        /// Stream seed, hashed into each pseudo-time.
        seed: u64,
    },
}

/// Timing-loop calibration knobs.
#[derive(Debug, Clone, Copy)]
pub struct MeasureConfig {
    /// Untimed products run first (page-fault and cache warmup).
    pub warmup: usize,
    /// Timed batches; the median is reported. Odd values give a true
    /// median.
    pub samples: usize,
    /// Flop budget per timed batch: `repeats = target_flops / (2·nnz)`,
    /// clamped to `[1, max_repeats]`.
    pub target_flops: f64,
    /// Upper bound on per-batch repeats (bounds tiny-matrix runtime).
    pub max_repeats: usize,
    /// SIMD tier the kernels dispatch at.
    pub level: SimdLevel,
}

impl MeasureConfig {
    /// Labeling defaults: 2 warmups, median of 5, ~2 Mflop per batch.
    /// Keeps a full Tiny-corpus sweep (6 formats × 2 tiers × 2
    /// precisions per matrix) in the tens of seconds on one core.
    pub fn labeling(level: SimdLevel) -> MeasureConfig {
        MeasureConfig {
            warmup: 2,
            samples: 5,
            target_flops: 2.0e6,
            max_repeats: 1000,
            level,
        }
    }

    /// Benchmark defaults: more warmup and a larger flop budget per
    /// batch for tighter medians.
    pub fn bench(level: SimdLevel) -> MeasureConfig {
        MeasureConfig {
            warmup: 3,
            samples: 7,
            target_flops: 2.0e7,
            max_repeats: 4000,
            level,
        }
    }
}

/// One calibrated kernel measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Median time of one SpMV, in seconds.
    pub seconds: f64,
    /// Useful throughput, `2·nnz / seconds / 1e9` (padding excluded).
    pub gflops: f64,
    /// Products per timed batch after calibration.
    pub repeats: usize,
}

/// The measurement harness: owns the calibration config; the caller owns
/// the `x`/`y` buffers (and the [`PreparedMatrix`]), so nothing inside
/// the timed region allocates.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    config: MeasureConfig,
}

impl Harness {
    /// A harness with the given calibration.
    pub fn new(config: MeasureConfig) -> Harness {
        Harness { config }
    }

    /// The active calibration.
    pub fn config(&self) -> &MeasureConfig {
        &self.config
    }

    /// Time `y = A·x` for a prepared matrix. `x`/`y` must satisfy the
    /// [`crate::spmv`] contract; their contents on return are the last
    /// product's output.
    pub fn measure<T: SimdKernels>(
        &self,
        m: &PreparedMatrix<'_, T>,
        x: &[T],
        y: &mut [T],
    ) -> Measurement {
        let cfg = &self.config;
        let nnz = m.nnz();
        let flops = 2.0 * nnz as f64;
        let repeats = if flops > 0.0 {
            ((cfg.target_flops / flops).ceil() as usize).clamp(1, cfg.max_repeats)
        } else {
            1
        };
        for _ in 0..cfg.warmup {
            crate::spmv(m, x, y, cfg.level);
        }
        spmv_observe::counter("exec.measurements", 1);
        spmv_observe::counter("exec.products", (cfg.warmup + cfg.samples * repeats) as u64);
        let mut times = Vec::with_capacity(cfg.samples.max(1));
        for _ in 0..cfg.samples.max(1) {
            let t0 = Instant::now();
            for _ in 0..repeats {
                // black_box pins the buffers as observed so the repeat
                // loop cannot be collapsed into a single product.
                crate::spmv(
                    m,
                    std::hint::black_box(x),
                    std::hint::black_box(y),
                    cfg.level,
                );
            }
            times.push(t0.elapsed().as_secs_f64() / repeats as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let seconds = times[times.len() / 2].max(1e-12);
        Measurement {
            seconds,
            gflops: flops / seconds / 1e9,
            repeats,
        }
    }
}

/// FNV-1a 64-bit (local copy; the exec crate sits below the core
/// crate's fault-injection hasher).
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Deterministic pseudo-time for a (matrix, format, precision, tier)
/// cell — the [`ExecMode::Synthetic`] stand-in for [`Harness::measure`].
///
/// The model charges each format its real structural work terms
/// (entries streamed, padded slots, per-row and per-tile overheads),
/// scales by precision bytes and by a per-format SIMD speedup (only
/// formats with vector paths speed up), and multiplies in a ±5% jitter
/// hashed from `(seed, key)` so ties break differently across matrices.
/// Pure function of its inputs: identical on every machine and thread
/// count.
pub fn synthetic_time<T: Scalar>(
    seed: u64,
    key: &str,
    m: &PreparedMatrix<'_, T>,
    level: SimdLevel,
) -> f64 {
    let nnz = m.nnz() as f64;
    // (per-entry ns, per-row/overhead ns, AVX2 speedup)
    let (work_ns, over_ns, simd_gain) = match m {
        PreparedMatrix::Coo(v) => (1.35 * nnz, 0.3 * v.n_rows as f64, 1.0),
        PreparedMatrix::Csr(v) => (1.0 * nnz, 0.8 * v.n_rows as f64, 2.6),
        PreparedMatrix::CsrBlocked(v) => (1.1 * nnz, 0.4 * v.n_rows as f64, 2.6),
        PreparedMatrix::Ell(v) => {
            // Padded slots cost like entries: the plane streams whole.
            (
                0.85 * (v.n_rows * v.width) as f64,
                0.2 * v.n_rows as f64,
                2.2,
            )
        }
        PreparedMatrix::Hyb(v) => (
            0.85 * (v.head.n_rows * v.head.width) as f64 + 1.35 * v.tail.vals.len() as f64,
            0.3 * v.head.n_rows as f64,
            1.8,
        ),
        PreparedMatrix::MergeCsr(v) => (1.05 * nnz, 0.5 * v.csr.n_rows as f64, 1.0),
        PreparedMatrix::Csr5(v) => (1.15 * nnz, 25.0 * (v.n_tiles + 1) as f64, 1.0),
    };
    let bytes_scale = (4.0 + T::BYTES as f64) / 12.0; // f32 ≈ 0.67×, f64 = 1×
    let gain = match level {
        SimdLevel::Scalar => 1.0,
        SimdLevel::Avx2 => simd_gain,
    };
    let mut h = fnv1a_64(key.as_bytes()) ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h = fnv1a_64(&h.to_le_bytes());
    let jitter = 1.0 + ((h % 1024) as f64 / 1024.0 - 0.5) * 0.10;
    ((work_ns + over_ns + 150.0) * bytes_scale / gain) * jitter * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::ExecScratch;
    use spmv_matrix::{Format, RowStats, TripletBuilder};

    fn small_csr() -> spmv_matrix::CsrMatrix<f64> {
        let mut b = TripletBuilder::new(4, 4);
        for (r, c, v) in [(0, 0, 1.0), (0, 3, 2.0), (1, 1, 3.0), (3, 2, -1.0)] {
            b.push(r, c, v).unwrap();
        }
        b.build().to_csr()
    }

    #[test]
    fn measure_reports_positive_time_and_calibrated_repeats() {
        let csr = small_csr();
        let stats = RowStats::of(csr.row_ptr());
        let mut scratch = ExecScratch::new();
        let m = PreparedMatrix::build(&csr, Format::Csr, &stats, &mut scratch).unwrap();
        let h = Harness::new(MeasureConfig {
            warmup: 1,
            samples: 3,
            target_flops: 100.0,
            max_repeats: 16,
            level: SimdLevel::Scalar,
        });
        let x = vec![1.0f64; 4];
        let mut y = vec![0.0f64; 4];
        let meas = h.measure(&m, &x, &mut y);
        assert!(meas.seconds > 0.0);
        assert!(meas.gflops > 0.0);
        // 2·nnz = 8 flops; 100-flop budget → ceil(12.5) = 13, capped 16.
        assert_eq!(meas.repeats, 13);
        // y holds the last product.
        assert_eq!(y, vec![3.0, 3.0, 0.0, -1.0]);
    }

    #[test]
    fn synthetic_times_are_deterministic_and_tier_sensitive() {
        let csr = small_csr();
        let stats = RowStats::of(csr.row_ptr());
        let mut scratch = ExecScratch::new();
        let m = PreparedMatrix::build(&csr, Format::Csr, &stats, &mut scratch).unwrap();
        let a = synthetic_time(7, "m0", &m, SimdLevel::Avx2);
        let b = synthetic_time(7, "m0", &m, SimdLevel::Avx2);
        assert_eq!(a, b);
        let scalar = synthetic_time(7, "m0", &m, SimdLevel::Scalar);
        assert!(scalar > a, "SIMD pseudo-time must beat scalar for CSR");
        let other_seed = synthetic_time(8, "m0", &m, SimdLevel::Avx2);
        assert_ne!(a, other_seed);
        let other_key = synthetic_time(7, "m1", &m, SimdLevel::Avx2);
        assert_ne!(a, other_key);
    }
}
