//! Execution views: per-format kernel operands derived from a CSR matrix.
//!
//! Kernel setup reuses the PR-3 value-free [`FormatStructure`] layouts for
//! every index plane (ELL's padded column-major plane, HYB's head/tail
//! split, CSR5's transposed tiles, COO's expanded row stream) and only
//! adds the value planes the structural layer deliberately omits. All
//! derived arrays land in a caller-owned [`ExecScratch`] that grows to a
//! sweep's high-water mark and then stops allocating, so preparing a
//! matrix for execution is alloc-free in steady state — and preparation
//! always happens outside the measured region.

use spmv_matrix::{
    merge_path_search, CsrMatrix, FormatStructure, MatrixError, MergeCoordinate, RowStats, Scalar,
    StructureScratch,
};

/// Column-strip width (in `x` elements) of the cache-blocked CSR kernel:
/// 8192 doubles = 64 KiB per strip window, sized so one strip of `x` plus
/// the streamed triplets stay L1/L2-resident.
pub const STRIP_COLS: usize = 8192;

/// A CSR matrix switches to the cache-blocked column-strip kernel when its
/// `x` vector exceeds this many elements (1 MiB of doubles): below that the
/// whole gather window fits in L2 and strip bucketing is pure overhead.
pub const BLOCK_THRESHOLD_COLS: usize = 131_072;

/// Merge-path items consumed per segment by the merge-CSR kernel. Segments
/// bound the row/nz imbalance any one inner loop sees, mirroring the GPU
/// decomposition the format exists for.
pub const MERGE_SEG_ITEMS: usize = 4096;

/// Largest supported CSR5 tile width (per-lane cursor arrays are
/// stack-allocated at this size in the kernel).
pub const MAX_OMEGA: usize = 64;

/// Reusable buffers for [`PreparedMatrix::build`]. Keep one per worker and
/// feed it every (matrix, format) pair in turn.
#[derive(Debug, Default)]
pub struct ExecScratch<T> {
    /// Index-plane scratch shared with the structural profiling layer.
    structure: StructureScratch,
    /// ELL / HYB-head padded value plane; CSR5 transposed tile values.
    vals: Vec<T>,
    /// HYB tail values.
    tail_vals: Vec<T>,
    /// Blocked-CSR strip-bucketed row indices.
    brows: Vec<u32>,
    /// Blocked-CSR strip-bucketed column indices.
    bcols: Vec<u32>,
    /// Blocked-CSR strip-bucketed values.
    bvals: Vec<T>,
    /// Blocked-CSR strip extents (`n_strips + 1` offsets into the streams).
    strip_ptr: Vec<u32>,
    /// Merge-CSR segment boundary coordinates.
    segs: Vec<MergeCoordinate>,
    /// CSR5 per-tile start rows (`n_tiles + 1`; last entry = tail row).
    tile_rows: Vec<u32>,
}

impl<T: Scalar> ExecScratch<T> {
    /// A fresh, empty scratch (buffers allocate lazily on first use).
    pub fn new() -> ExecScratch<T> {
        ExecScratch {
            structure: StructureScratch::new(),
            vals: Vec::new(),
            tail_vals: Vec::new(),
            brows: Vec::new(),
            bcols: Vec::new(),
            bvals: Vec::new(),
            strip_ptr: Vec::new(),
            segs: Vec::new(),
            tile_rows: Vec::new(),
        }
    }
}

/// COO execution view: triplet streams in row-major order.
#[derive(Debug, Clone, Copy)]
pub struct CooExec<'a, T> {
    /// Number of rows.
    pub n_rows: usize,
    /// Row index per non-zero (non-decreasing).
    pub rows: &'a [u32],
    /// Column index per non-zero.
    pub cols: &'a [u32],
    /// Value per non-zero.
    pub vals: &'a [T],
}

/// CSR execution view: the matrix arrays borrowed directly.
#[derive(Debug, Clone, Copy)]
pub struct CsrExec<'a, T> {
    /// Number of rows.
    pub n_rows: usize,
    /// Row-pointer array (`n_rows + 1` entries).
    pub row_ptr: &'a [u32],
    /// Column indices, row-contiguous.
    pub col_idx: &'a [u32],
    /// Values, row-contiguous.
    pub vals: &'a [T],
}

/// Cache-blocked CSR execution view: triplets bucketed into column strips
/// of [`STRIP_COLS`] so each strip's `x` window is cache-resident while
/// its entries stream.
#[derive(Debug, Clone, Copy)]
pub struct CsrBlockedExec<'a, T> {
    /// Number of rows.
    pub n_rows: usize,
    /// Strip extents: strip `s` owns stream entries
    /// `strip_ptr[s]..strip_ptr[s+1]`.
    pub strip_ptr: &'a [u32],
    /// Row index per entry, strip-bucketed (row-major within a strip).
    pub rows: &'a [u32],
    /// Column index per entry.
    pub cols: &'a [u32],
    /// Value per entry.
    pub vals: &'a [T],
}

/// ELL execution view: padded column-major column and value planes
/// (padding slots hold column 0 and value zero).
#[derive(Debug, Clone, Copy)]
pub struct EllExec<'a, T> {
    /// Number of rows.
    pub n_rows: usize,
    /// True (unpadded) non-zero count.
    pub nnz: usize,
    /// Padded row width `K`.
    pub width: usize,
    /// Column-index plane, column-major (`width * n_rows` slots).
    pub col_plane: &'a [u32],
    /// Value plane, column-major, zero in padding slots.
    pub val_plane: &'a [T],
}

/// HYB execution view: ELL head plus COO tail.
#[derive(Debug, Clone, Copy)]
pub struct HybExec<'a, T> {
    /// The regular head.
    pub head: EllExec<'a, T>,
    /// The irregular spill.
    pub tail: CooExec<'a, T>,
}

/// Merge-CSR execution view: plain CSR arrays plus precomputed equal-work
/// merge-path segment boundaries.
#[derive(Debug, Clone, Copy)]
pub struct MergeExec<'a, T> {
    /// The CSR arrays the merge path walks.
    pub csr: CsrExec<'a, T>,
    /// Segment boundaries (`n_segs + 1` coordinates, first `(0,0)`, last
    /// `(n_rows, nnz)`).
    pub segs: &'a [MergeCoordinate],
}

/// CSR5 execution view: transposed full tiles plus the CSR-ordered tail.
#[derive(Debug, Clone, Copy)]
pub struct Csr5Exec<'a, T> {
    /// Number of rows.
    pub n_rows: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Tile width (SIMD lanes); at most [`MAX_OMEGA`].
    pub omega: usize,
    /// Tile height (entries per lane).
    pub sigma: usize,
    /// Number of full tiles.
    pub n_tiles: usize,
    /// Transposed tile column indices (step-major: consecutive entries are
    /// one step across all lanes).
    pub cols_t: &'a [u32],
    /// Transposed tile values, same layout.
    pub vals_t: &'a [T],
    /// Per-tile start row (`n_tiles + 1`; the last entry is the row of the
    /// first tail element, or `n_rows` when the tail is empty).
    pub tile_rows: &'a [u32],
    /// The source row pointer (lane row cursors walk it).
    pub row_ptr: &'a [u32],
    /// Column indices of the CSR-ordered tail.
    pub tail_cols: &'a [u32],
    /// Values of the CSR-ordered tail.
    pub tail_vals: &'a [T],
}

/// A matrix prepared for native execution in one concrete format.
#[derive(Debug, Clone, Copy)]
pub enum PreparedMatrix<'a, T> {
    /// COO triplet streams.
    Coo(CooExec<'a, T>),
    /// Plain CSR (row-sequential kernel).
    Csr(CsrExec<'a, T>),
    /// Cache-blocked CSR (column-strip streams; chosen automatically for
    /// matrices whose `x` exceeds [`BLOCK_THRESHOLD_COLS`]).
    CsrBlocked(CsrBlockedExec<'a, T>),
    /// ELL padded planes.
    Ell(EllExec<'a, T>),
    /// HYB head + tail.
    Hyb(HybExec<'a, T>),
    /// Merge-path CSR.
    MergeCsr(MergeExec<'a, T>),
    /// CSR5 transposed tiles.
    Csr5(Csr5Exec<'a, T>),
}

impl<'a, T: Scalar> PreparedMatrix<'a, T> {
    /// Prepare `csr` for execution in `format`. `stats` must be
    /// [`RowStats::of`] the same matrix. Fails exactly when the
    /// value-carrying conversion fails (ELL padding cap), with the
    /// identical error — so native labeling records the same failure
    /// cells the simulator path does.
    pub fn build(
        csr: &'a CsrMatrix<T>,
        format: spmv_matrix::Format,
        stats: &RowStats,
        scratch: &'a mut ExecScratch<T>,
    ) -> Result<PreparedMatrix<'a, T>, MatrixError> {
        let n_rows = csr.n_rows();
        let nnz = csr.nnz();
        // The structural layer derives every index plane; this function
        // only adds the value planes it deliberately omits.
        let structure = FormatStructure::build(csr, format, stats, &mut scratch.structure)?;
        Ok(match structure {
            FormatStructure::Coo(s) => PreparedMatrix::Coo(CooExec {
                n_rows,
                rows: s.rows,
                cols: s.cols,
                vals: csr.values(),
            }),
            FormatStructure::Csr(s) => {
                if csr.n_cols() > BLOCK_THRESHOLD_COLS && nnz > 0 {
                    build_blocked_csr(
                        csr,
                        &mut scratch.strip_ptr,
                        &mut scratch.brows,
                        &mut scratch.bcols,
                        &mut scratch.bvals,
                    );
                    PreparedMatrix::CsrBlocked(CsrBlockedExec {
                        n_rows,
                        strip_ptr: &scratch.strip_ptr,
                        rows: &scratch.brows,
                        cols: &scratch.bcols,
                        vals: &scratch.bvals,
                    })
                } else {
                    PreparedMatrix::Csr(CsrExec {
                        n_rows,
                        row_ptr: s.row_ptr,
                        col_idx: s.col_idx,
                        vals: csr.values(),
                    })
                }
            }
            FormatStructure::Ell(s) => {
                build_padded_vals(
                    csr.row_ptr(),
                    csr.values(),
                    n_rows,
                    s.width,
                    &mut scratch.vals,
                );
                PreparedMatrix::Ell(EllExec {
                    n_rows,
                    nnz: s.nnz,
                    width: s.width,
                    col_plane: s.col_plane,
                    val_plane: &scratch.vals,
                })
            }
            FormatStructure::Hyb(s) => {
                let k = s.ell.width;
                build_hyb_vals(
                    csr.row_ptr(),
                    csr.values(),
                    n_rows,
                    stats.hyb_threshold(),
                    k,
                    &mut scratch.vals,
                    &mut scratch.tail_vals,
                );
                PreparedMatrix::Hyb(HybExec {
                    head: EllExec {
                        n_rows,
                        nnz: s.ell.nnz,
                        width: k,
                        col_plane: s.ell.col_plane,
                        val_plane: &scratch.vals,
                    },
                    tail: CooExec {
                        n_rows,
                        rows: s.tail.rows,
                        cols: s.tail.cols,
                        vals: &scratch.tail_vals,
                    },
                })
            }
            FormatStructure::MergeCsr(s) => {
                build_merge_segments(csr.row_ptr(), n_rows, nnz, &mut scratch.segs);
                PreparedMatrix::MergeCsr(MergeExec {
                    csr: CsrExec {
                        n_rows,
                        row_ptr: s.row_ptr,
                        col_idx: s.col_idx,
                        vals: csr.values(),
                    },
                    segs: &scratch.segs,
                })
            }
            FormatStructure::Csr5(s) => {
                let tile_nnz = s.config.tile_nnz();
                build_csr5_vals(
                    csr.values(),
                    s.config.omega,
                    s.config.sigma,
                    s.n_tiles,
                    &mut scratch.vals,
                );
                build_tile_rows(
                    csr.row_ptr(),
                    n_rows,
                    tile_nnz,
                    s.n_tiles,
                    &mut scratch.tile_rows,
                );
                let tail_start = s.n_tiles * tile_nnz;
                PreparedMatrix::Csr5(Csr5Exec {
                    n_rows,
                    nnz,
                    omega: s.config.omega,
                    sigma: s.config.sigma,
                    n_tiles: s.n_tiles,
                    cols_t: s.cols_t,
                    vals_t: &scratch.vals,
                    tile_rows: &scratch.tile_rows,
                    row_ptr: csr.row_ptr(),
                    tail_cols: s.tail_cols,
                    tail_vals: &csr.values()[tail_start..],
                })
            }
        })
    }

    /// Which format this view executes.
    pub fn format(&self) -> spmv_matrix::Format {
        use spmv_matrix::Format;
        match self {
            PreparedMatrix::Coo(_) => Format::Coo,
            PreparedMatrix::Csr(_) | PreparedMatrix::CsrBlocked(_) => Format::Csr,
            PreparedMatrix::Ell(_) => Format::Ell,
            PreparedMatrix::Hyb(_) => Format::Hyb,
            PreparedMatrix::MergeCsr(_) => Format::MergeCsr,
            PreparedMatrix::Csr5(_) => Format::Csr5,
        }
    }

    /// Stored non-zeros — the 2·nnz flop count the GFLOP/s figures use
    /// (padding slots never count as useful work).
    pub fn nnz(&self) -> usize {
        match self {
            PreparedMatrix::Coo(v) => v.vals.len(),
            PreparedMatrix::Csr(v) => v.vals.len(),
            PreparedMatrix::CsrBlocked(v) => v.vals.len(),
            PreparedMatrix::Ell(v) => v.nnz,
            PreparedMatrix::Hyb(v) => v.head.nnz + v.tail.vals.len(),
            PreparedMatrix::MergeCsr(v) => v.csr.vals.len(),
            PreparedMatrix::Csr5(v) => v.nnz,
        }
    }
}

/// Fill `plane` with the column-major padded value plane matching the ELL
/// column plane (zero in padding slots, as `EllMatrix::from_csr` writes).
fn build_padded_vals<T: Scalar>(
    row_ptr: &[u32],
    vals: &[T],
    n_rows: usize,
    width: usize,
    plane: &mut Vec<T>,
) {
    plane.clear();
    plane.resize(n_rows * width, T::ZERO);
    for (r, w) in row_ptr.windows(2).enumerate() {
        let (s, e) = (w[0] as usize, w[1] as usize);
        for (k, &v) in vals[s..e].iter().enumerate() {
            plane[k * n_rows + r] = v;
        }
    }
}

/// Fill the HYB head value plane and tail value stream (split mirrors
/// `HybMatrix::from_csr`: each row's first `min(len, k)` entries head).
fn build_hyb_vals<T: Scalar>(
    row_ptr: &[u32],
    vals: &[T],
    n_rows: usize,
    k: usize,
    head_width: usize,
    plane: &mut Vec<T>,
    tail: &mut Vec<T>,
) {
    plane.clear();
    plane.resize(n_rows * head_width, T::ZERO);
    tail.clear();
    for (r, w) in row_ptr.windows(2).enumerate() {
        let (s, e) = (w[0] as usize, w[1] as usize);
        let split = (e - s).min(k);
        for (slot, &v) in vals[s..s + split].iter().enumerate() {
            plane[slot * n_rows + r] = v;
        }
        tail.extend_from_slice(&vals[s + split..e]);
    }
}

/// Bucket CSR entries into column strips of [`STRIP_COLS`], preserving row
/// order within each strip (a counting sort over strips).
fn build_blocked_csr<T: Scalar>(
    csr: &CsrMatrix<T>,
    strip_ptr: &mut Vec<u32>,
    brows: &mut Vec<u32>,
    bcols: &mut Vec<u32>,
    bvals: &mut Vec<T>,
) {
    let nnz = csr.nnz();
    let n_strips = csr.n_cols().div_ceil(STRIP_COLS);
    strip_ptr.clear();
    strip_ptr.resize(n_strips + 1, 0);
    for &c in csr.col_idx() {
        strip_ptr[c as usize / STRIP_COLS + 1] += 1;
    }
    for s in 0..n_strips {
        strip_ptr[s + 1] += strip_ptr[s];
    }
    brows.clear();
    brows.resize(nnz, 0);
    bcols.clear();
    bcols.resize(nnz, 0);
    bvals.clear();
    bvals.resize(nnz, T::ZERO);
    let mut cursor: Vec<u32> = strip_ptr[..n_strips].to_vec();
    for (r, w) in csr.row_ptr().windows(2).enumerate() {
        for i in w[0] as usize..w[1] as usize {
            let c = csr.col_idx()[i];
            let strip = c as usize / STRIP_COLS;
            let pos = cursor[strip] as usize;
            cursor[strip] += 1;
            brows[pos] = r as u32;
            bcols[pos] = c;
            bvals[pos] = csr.values()[i];
        }
    }
}

/// Precompute equal-work merge-path segment boundaries, one per
/// [`MERGE_SEG_ITEMS`] merge items.
fn build_merge_segments(
    row_ptr: &[u32],
    n_rows: usize,
    nnz: usize,
    segs: &mut Vec<MergeCoordinate>,
) {
    let total = n_rows + nnz;
    let n_segs = total.div_ceil(MERGE_SEG_ITEMS).max(1);
    let row_ends = &row_ptr[1..];
    segs.clear();
    for p in 0..=n_segs {
        let d = (total * p) / n_segs;
        segs.push(merge_path_search(d, row_ends, nnz));
    }
}

/// Fill `vals_t` with CSR5's transposed full-tile value plane (same
/// permutation the structural layer applies to column indices).
fn build_csr5_vals<T: Scalar>(
    vals: &[T],
    omega: usize,
    sigma: usize,
    n_tiles: usize,
    vals_t: &mut Vec<T>,
) {
    let tile_nnz = omega * sigma;
    vals_t.clear();
    vals_t.resize(n_tiles * tile_nnz, T::ZERO);
    for t in 0..n_tiles {
        let base = t * tile_nnz;
        for lane in 0..omega {
            for s in 0..sigma {
                vals_t[base + s * omega + lane] = vals[base + lane * sigma + s];
            }
        }
    }
}

/// Per-tile start rows: `tile_rows[t]` is the row containing the tile's
/// first entry; the final entry is the tail's first row (or `n_rows`).
fn build_tile_rows(
    row_ptr: &[u32],
    n_rows: usize,
    tile_nnz: usize,
    n_tiles: usize,
    tile_rows: &mut Vec<u32>,
) {
    tile_rows.clear();
    let mut r = 0usize;
    for t in 0..=n_tiles {
        let g = (t * tile_nnz) as u32;
        // First row whose extent reaches past entry `g` (empty rows and,
        // at `g == nnz`, every row get skipped — yielding `n_rows`).
        while r < n_rows && row_ptr[r + 1] <= g {
            r += 1;
        }
        tile_rows.push(r as u32);
    }
}
