//! # spmv-exec
//!
//! Native CPU SpMV execution for the six storage formats under study —
//! the *measured* counterpart to the `spmv-gpusim` performance-model
//! simulator. Where the simulator predicts what a Kepler or Pascal GPU
//! would do with a sparsity structure, this crate actually runs the
//! product on the host CPU and times it, so ground-truth labels can come
//! from real hardware (`--env cpu-native` in the CLIs).
//!
//! Three layers:
//!
//! * [`prep`] — [`PreparedMatrix`]: per-format execution views built from
//!   a CSR matrix via the value-free [`spmv_matrix::FormatStructure`]
//!   layouts plus value planes derived into reusable [`ExecScratch`]
//!   buffers. Preparation is alloc-light (buffers amortize across a
//!   labeling sweep) and always happens **outside** the timed region.
//! * [`kernels`] — the kernels themselves: 4-wide unrolled scalar paths
//!   for every format, cache blocking of the `x`-gather (column-strip
//!   streams for wide CSR matrices, row-tiled column-major traversal for
//!   ELL/HYB), and runtime-dispatched AVX2/FMA paths ([`simd`]) behind
//!   `is_x86_feature_detected!` with scalar fallback everywhere.
//! * [`measure`] — a calibrated harness: monotonic clock, warmup then
//!   median-of-k repetitions, nnz-scaled inner repeat counts so small
//!   matrices are timed over many products, per-kernel GFLOP/s, plus a
//!   seeded *synthetic* mode producing deterministic pseudo-measurements
//!   for CI replay (`--exec-synthetic`).
//!
//! The crate keeps the workspace's zero-dependency posture: kernels use
//! only `std::arch` intrinsics, and the only workspace dependencies are
//! the matrix substrate and the observability layer.

#![warn(missing_docs)]

pub mod kernels;
pub mod measure;
pub mod prep;
pub mod simd;

pub use kernels::spmv;
pub use measure::{synthetic_time, ExecMode, Harness, MeasureConfig, Measurement};
pub use prep::{ExecScratch, PreparedMatrix};
pub use simd::SimdKernels;

/// The SIMD instruction tier a kernel dispatch runs at.
///
/// [`SimdLevel::Avx2`] is only *used* after a runtime
/// `is_x86_feature_detected!` probe inside the specialized kernels, so
/// passing it on a machine without AVX2/FMA silently degrades to the
/// scalar path rather than faulting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable scalar kernels (4-wide unrolled, still cache-blocked).
    Scalar,
    /// AVX2 + FMA `std::arch` kernels with per-call feature re-check.
    Avx2,
}

impl SimdLevel {
    /// Probe the running CPU: [`SimdLevel::Avx2`] when AVX2 and FMA are
    /// both available, else [`SimdLevel::Scalar`].
    pub fn detect() -> SimdLevel {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    }

    /// Stable label used in bench output and environment descriptors.
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable_and_labelled() {
        let a = SimdLevel::detect();
        let b = SimdLevel::detect();
        assert_eq!(a, b);
        assert!(matches!(a.label(), "scalar" | "avx2"));
        assert_eq!(SimdLevel::Scalar.to_string(), "scalar");
        assert_eq!(SimdLevel::Avx2.to_string(), "avx2");
    }
}
