//! Differential correctness: every native kernel × SIMD tier against the
//! naive scalar CSR reference (`CsrMatrix::spmv`).
//!
//! The kernels reassociate row sums (unrolling, column strips, vector
//! lanes), so outputs are compared to a tolerance scaled by each row's
//! absolute dot product `Σ|a_ij·x_j|` — the natural bound on
//! reduction-order error — rather than bitwise. Inputs sweep all nine
//! corpus generator families at both precisions, plus hand-built
//! edge cases (empty matrices, empty/single/dense rows, and a wide
//! matrix that exercises the column-strip blocked CSR path).

use proptest::ProptestConfig;
use spmv_corpus::{GenKind, MatrixSpec};
use spmv_exec::prep::MERGE_SEG_ITEMS;
use spmv_exec::{ExecScratch, PreparedMatrix, SimdKernels, SimdLevel};
use spmv_matrix::{CsrMatrix, Format, RowStats, Scalar, SparseMatrix, TripletBuilder};

/// Deterministic, sign-alternating dense vector (no RNG so failures
/// reproduce from the matrix spec alone).
fn dense_x<T: Scalar>(n: usize) -> Vec<T> {
    (0..n)
        .map(|j| {
            let h = (j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
            T::from_f64((h % 2000) as f64 / 1000.0 - 1.0)
        })
        .collect()
}

/// Reduction-order error bound for one row: `tol · (Σ|a_ij·x_j| + 1)`.
fn row_bounds<T: Scalar>(csr: &CsrMatrix<T>, x: &[T], tol: f64) -> Vec<f64> {
    let mut bounds = vec![0.0f64; csr.n_rows()];
    for (r, b) in bounds.iter_mut().enumerate() {
        let mut abs_dot = 0.0f64;
        for (&c, &v) in csr.row(r).0.iter().zip(csr.row(r).1) {
            abs_dot += (v.to_f64() * x[c as usize].to_f64()).abs();
        }
        *b = tol * (abs_dot + 1.0);
    }
    bounds
}

/// Run every format × SIMD tier for one matrix and compare against the
/// reference kernel. Returns an error string for `prop_assert!`-style
/// reporting.
fn check_all_formats<T: SimdKernels>(csr: &CsrMatrix<T>, tol: f64) -> Result<(), String> {
    let stats = RowStats::of(csr.row_ptr());
    let x = dense_x::<T>(csr.n_cols());
    let mut y_ref = vec![T::ZERO; csr.n_rows()];
    csr.spmv(&x, &mut y_ref);
    let bounds = row_bounds(csr, &x, tol);
    let mut scratch = ExecScratch::new();
    for format in Format::ALL {
        for level in [SimdLevel::Scalar, SimdLevel::Avx2] {
            let prepared = match PreparedMatrix::build(csr, format, &stats, &mut scratch) {
                Ok(p) => p,
                Err(e) => {
                    // Preparation must fail exactly where the
                    // value-carrying conversion fails (ELL padding cap).
                    if SparseMatrix::from_csr(csr, format).is_ok() {
                        return Err(format!(
                            "{format:?}: exec prep failed ({e}) but conversion succeeds"
                        ));
                    }
                    continue;
                }
            };
            let mut y = vec![T::from_f64(f64::NAN); csr.n_rows()];
            spmv_exec::spmv(&prepared, &x, &mut y, level);
            for (r, (&got, &want)) in y.iter().zip(y_ref.iter()).enumerate() {
                let err = (got.to_f64() - want.to_f64()).abs();
                // NaN errors (kernel never wrote the row) must fail too.
                if err.is_nan() || err > bounds[r] {
                    return Err(format!(
                        "{format:?}/{level}: row {r} of {}: got {got}, want {want} (err {err:.3e} > bound {:.3e})",
                        csr.n_rows(),
                        bounds[r],
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Build a spec for one of the nine generator families from three free
/// size knobs, keeping matrices small enough for a proptest sweep.
fn spec_for(family: usize, a: usize, b: usize, seed: u64) -> MatrixSpec {
    let kind = match family {
        0 => GenKind::Uniform {
            n_rows: 20 + a,
            n_cols: 20 + b,
            nnz: (20 + a) * 4,
        },
        1 => GenKind::Banded {
            n: 30 + a,
            half_width: 1 + b / 40,
            fill: 0.8,
        },
        2 => GenKind::Diagonal {
            n: 30 + a,
            offsets: vec![-(1 + (b as i64 % 7)), 0, 1, 2 + (b as i64 % 5)],
        },
        3 => GenKind::Stencil2D {
            gx: 4 + a / 12,
            gy: 4 + b / 12,
        },
        4 => GenKind::Stencil3D {
            gx: 2 + a / 40,
            gy: 2 + b / 40,
            gz: 3,
        },
        5 => GenKind::RMat {
            scale: 6 + (a as u32 % 3),
            nnz: 300 + b * 4,
            probs: (0.45, 0.22, 0.22),
        },
        6 => GenKind::Block {
            grid: 6 + a / 16,
            block_size: 2 + b % 4,
            blocks_per_row: 2,
        },
        7 => GenKind::RowSkew {
            n_rows: 30 + a,
            n_cols: 30 + b,
            min_len: 1,
            alpha: 1.2,
            max_len: 25 + b,
        },
        _ => GenKind::Clustered {
            n_rows: 20 + a,
            n_cols: 40 + b,
            runs: 1 + a % 3,
            run_len: 2 + b % 5,
        },
    };
    MatrixSpec {
        name: format!("diff_{family}_{a}_{b}"),
        kind,
        seed,
    }
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn kernels_match_reference_f64((family, a, b, seed) in (0usize..9, 0usize..100, 0usize..100, 0u64..1_000_000)) {
        let spec = spec_for(family, a, b, seed);
        let csr = spec.generate::<f64>();
        proptest::prop_assert!(check_all_formats(&csr, 1e-11).is_ok(), "{:?}: {}", spec.kind.family(), check_all_formats(&csr, 1e-11).unwrap_err());
    }

    #[test]
    fn kernels_match_reference_f32((family, a, b, seed) in (0usize..9, 0usize..100, 0usize..100, 0u64..1_000_000)) {
        let spec = spec_for(family, a, b, seed);
        let csr = spec.generate::<f32>();
        proptest::prop_assert!(check_all_formats(&csr, 1e-4).is_ok(), "{:?}: {}", spec.kind.family(), check_all_formats(&csr, 1e-4).unwrap_err());
    }
}

#[test]
fn empty_matrix_all_formats() {
    let csr: CsrMatrix<f64> = TripletBuilder::new(5, 5).build().to_csr();
    check_all_formats(&csr, 1e-12).unwrap();
    let one_by_one: CsrMatrix<f32> = TripletBuilder::new(1, 1).build().to_csr();
    check_all_formats(&one_by_one, 1e-5).unwrap();
}

#[test]
fn single_row_matrix() {
    let mut b = TripletBuilder::<f64>::new(1, 64);
    for c in 0..64 {
        b.push(0, c, (c as f64 - 31.5) / 7.0).unwrap();
    }
    check_all_formats(&b.build().to_csr(), 1e-12).unwrap();
}

#[test]
fn dense_row_among_empty_rows() {
    // One dense row, everything else empty: ELL/HYB padding extremes and
    // CSR5 row spans crossing many lanes.
    let mut b = TripletBuilder::<f64>::new(40, 120);
    for c in 0..120 {
        b.push(17, c, 1.0 / (1.0 + c as f64)).unwrap();
    }
    b.push(39, 0, 2.5).unwrap();
    check_all_formats(&b.build().to_csr(), 1e-12).unwrap();

    let mut b = TripletBuilder::<f32>::new(40, 120);
    for c in 0..120 {
        b.push(17, c, 1.0 / (1.0 + c as f32)).unwrap();
    }
    check_all_formats(&b.build().to_csr(), 1e-4).unwrap();
}

#[test]
fn alternating_empty_rows() {
    let mut b = TripletBuilder::<f64>::new(33, 33);
    for r in (0..33).step_by(2) {
        for c in [r, (r + 7) % 33] {
            b.push(r, c, (r * 33 + c) as f64 * 0.01 - 3.0).unwrap();
        }
    }
    check_all_formats(&b.build().to_csr(), 1e-12).unwrap();
}

#[test]
fn wide_matrix_takes_blocked_csr_path() {
    // 150k columns exceeds BLOCK_THRESHOLD_COLS, so CSR must prepare as
    // column-strip streams — and still match the reference.
    let spec = MatrixSpec {
        name: "wide".into(),
        kind: GenKind::Uniform {
            n_rows: 60,
            n_cols: 150_000,
            nnz: 2400,
        },
        seed: 11,
    };
    let csr = spec.generate::<f64>();
    let stats = RowStats::of(csr.row_ptr());
    let mut scratch = ExecScratch::new();
    let prepared = PreparedMatrix::build(&csr, Format::Csr, &stats, &mut scratch).unwrap();
    assert!(
        matches!(prepared, PreparedMatrix::CsrBlocked(_)),
        "wide CSR must select the cache-blocked kernel"
    );
    check_all_formats(&csr, 1e-11).unwrap();
}

#[test]
fn matrix_spanning_many_merge_segments() {
    // More than MERGE_SEG_ITEMS merge items forces multiple segments and
    // exercises the cross-segment carry.
    let n = MERGE_SEG_ITEMS; // n rows + n nnz = 2 segments minimum
    let mut b = TripletBuilder::<f64>::new(n, 8);
    for r in 0..n {
        b.push(r, r % 8, 1.0 + (r % 13) as f64).unwrap();
    }
    check_all_formats(&b.build().to_csr(), 1e-12).unwrap();
}
