//! Corpus explorer: sample the SuiteSparse-shaped synthetic suite, print
//! its Table-I-style census, and show which format wins each structural
//! family on both GPUs — the "no single format wins" observation (§III)
//! that motivates the whole paper.
//!
//! Run with: `cargo run --release --example corpus_explorer`

use std::collections::BTreeMap;

use spmv_core::{Env, LabeledCorpus};
use spmv_corpus::{bucket_labels, CorpusScale, SyntheticSuite};
use spmv_features::FeatureId;
use spmv_gpusim::Simulator;
use spmv_matrix::Format;

fn main() {
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 2024);
    println!("sampled {} matrices; labeling...", suite.len());
    let corpus = LabeledCorpus::collect(&suite, &Simulator::default(), 4);

    // Census (Table I shape).
    println!(
        "\n{:<10} {:>6} {:>10} {:>10} {:>10} {:>9} {:>10}",
        "nnz range", "count", "avg rows", "avg cols", "density%", "nnz_mu", "nnz_sigma"
    );
    for (bi, label) in bucket_labels().iter().enumerate() {
        let members: Vec<_> = corpus.records.iter().filter(|r| r.bucket == bi).collect();
        if members.is_empty() {
            continue;
        }
        let n = members.len() as f64;
        let avg = |id: FeatureId| members.iter().map(|r| r.features.get(id)).sum::<f64>() / n;
        println!(
            "{:<10} {:>6} {:>10.0} {:>10.0} {:>10.2} {:>9.1} {:>10.1}",
            label,
            members.len(),
            avg(FeatureId::NRows),
            avg(FeatureId::NCols),
            avg(FeatureId::NnzFrac),
            avg(FeatureId::NnzMu),
            avg(FeatureId::NnzSigma),
        );
    }

    // Winner census per family and environment.
    for env in [Env::ALL[1], Env::ALL[3]] {
        println!("\nbest format by family — {}:", env.label());
        let mut tab: BTreeMap<(String, Format), usize> = BTreeMap::new();
        for r in corpus.usable(&Format::ALL) {
            if let Some(best) = r.best_format(env, &Format::ALL) {
                *tab.entry((r.family.clone(), best)).or_default() += 1;
            }
        }
        let mut by_family: BTreeMap<String, Vec<(Format, usize)>> = BTreeMap::new();
        for ((fam, fmt), count) in tab {
            by_family.entry(fam).or_default().push((fmt, count));
        }
        for (fam, mut wins) in by_family {
            wins.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            let cells: Vec<String> = wins.iter().map(|(f, c)| format!("{f}:{c}")).collect();
            println!("  {:<10} {}", fam, cells.join("  "));
        }
    }
    println!("\nDifferent structures, different winners — hence learned format selection.");
}
