//! Quickstart: build a sparse matrix, convert it between all six storage
//! formats, run SpMV in each, and ask the GPU model what each would cost on
//! a Tesla P100.
//!
//! Run with: `cargo run --release --example quickstart`

use spmv_gpusim::{GpuArch, Simulator};
use spmv_matrix::{Format, Precision, SparseMatrix, TripletBuilder};

fn main() {
    // A 1000x1000 pentadiagonal matrix (a classic PDE discretization).
    let n = 1000usize;
    let mut b = TripletBuilder::<f64>::new(n, n);
    for i in 0..n {
        for off in [-40i64, -1, 0, 1, 40] {
            let j = i as i64 + off;
            if j >= 0 && (j as usize) < n {
                let v = if off == 0 { 4.0 } else { -1.0 };
                b.push(i, j as usize, v).expect("in bounds");
            }
        }
    }
    let csr = b.build().to_csr();
    println!(
        "matrix: {} x {}, {} non-zeros, max row {}\n",
        csr.n_rows(),
        csr.n_cols(),
        csr.nnz(),
        csr.max_row_len()
    );

    // SpMV in every format — identical math, different layout & cost.
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut reference = vec![0.0; n];
    csr.spmv(&x, &mut reference);

    let sim = Simulator::default();
    println!(
        "{:<10} {:>12} {:>14} {:>12}",
        "format", "bytes", "P100 time (us)", "GFLOPS"
    );
    for fmt in Format::ALL {
        let m = SparseMatrix::from_csr(&csr, fmt).expect("convertible");
        let mut y = vec![0.0; n];
        m.spmv(&x, &mut y);
        let max_err = y
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-9, "{fmt} disagrees with CSR by {max_err}");

        let meas = sim.measure(&m, &GpuArch::P100, Precision::Double, 1);
        println!(
            "{:<10} {:>12} {:>14.2} {:>12.1}",
            fmt.label(),
            m.storage_bytes(),
            meas.time_s * 1e6,
            meas.gflops
        );
    }
    println!("\nAll six formats computed the same y = A*x (checked).");
}
