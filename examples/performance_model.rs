//! Performance modeling: train the paper's MLP-ensemble time regressor and
//! compare predicted vs simulator-measured SpMV times on held-out matrices,
//! reporting the relative mean error (RME) the paper uses (§VI).
//!
//! Run with: `cargo run --release --example performance_model`

use spmv_core::{
    evaluate_regressor, Env, LabeledCorpus, RegModelKind, RegressionTask, SearchBudget,
};
use spmv_corpus::{CorpusScale, SyntheticSuite};
use spmv_features::FeatureSet;
use spmv_gpusim::Simulator;
use spmv_matrix::Format;

fn main() {
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 123);
    println!("labeling {} matrices...", suite.len());
    let corpus = LabeledCorpus::collect(&suite, &Simulator::default(), 4);

    let env = Env {
        arch_idx: 0,
        precision: spmv_matrix::Precision::Double,
    };
    println!("environment: {}\n", env.label());

    // Combined model over all six formats (features + format one-hot).
    let task = RegressionTask::build(&corpus, env, &Format::ALL, FeatureSet::Set123);
    println!(
        "regression task: {} samples ({} matrices x 6 formats)",
        task.len(),
        task.n_records()
    );

    for kind in RegModelKind::ALL {
        let out = evaluate_regressor(kind, &task, 7, SearchBudget::Quick);
        println!("\n{}: overall RME = {:.1}%", kind.label(), out.rme * 100.0);
        for (fmt, rme) in Format::ALL.iter().zip(&out.per_format_rme) {
            println!("  {:<10} RME = {:.1}%", fmt.label(), rme * 100.0);
        }
        // Show a few example predictions.
        if kind == RegModelKind::MlpEnsemble {
            println!("\n  sample predictions (us):  predicted  measured");
            for i in (0..out.predictions.len()).step_by(out.predictions.len() / 5 + 1) {
                println!(
                    "    {:>20.2}  {:>9.2}",
                    out.predictions[i] * 1e6,
                    out.measured[i] * 1e6
                );
            }
        }
    }
    println!("\nThe ensemble should match or beat the single MLP (paper Fig. 6).");
}
