//! Format advisor: train the paper's winning pipeline (XGBoost over the
//! top-7 features) on a synthetic corpus, then ask it to pick storage
//! formats for unseen matrices of very different structure — and check the
//! recommendations against the simulator's ground truth.
//!
//! Run with: `cargo run --release --example format_advisor`

use spmv_core::{Env, FormatAdvisor, LabeledCorpus, SearchBudget};
use spmv_corpus::{CorpusScale, GenKind, MatrixSpec, SyntheticSuite};
use spmv_gpusim::Simulator;
use spmv_matrix::{CsrMatrix, Format, SparseMatrix};

fn main() {
    // 1. Label a training corpus (cached after the first run).
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 99);
    println!("labeling {} training matrices...", suite.len());
    let corpus = LabeledCorpus::collect(&suite, &Simulator::default(), 4);

    // 2. Train the advisor for P100 / double precision.
    let env = Env {
        arch_idx: 1,
        precision: spmv_matrix::Precision::Double,
    };
    println!("training advisor for {}...", env.label());
    let advisor = FormatAdvisor::train(&corpus, env, SearchBudget::Quick);

    // 3. Unseen matrices spanning the structural spectrum.
    let probes: Vec<(&str, GenKind)> = vec![
        (
            "regular band",
            GenKind::Banded {
                n: 30_000,
                half_width: 5,
                fill: 1.0,
            },
        ),
        ("2-D stencil", GenKind::Stencil2D { gx: 180, gy: 180 }),
        (
            "uniform random",
            GenKind::Uniform {
                n_rows: 20_000,
                n_cols: 20_000,
                nnz: 150_000,
            },
        ),
        (
            "power-law graph",
            GenKind::RMat {
                scale: 14,
                nnz: 180_000,
                probs: (0.57, 0.19, 0.19),
            },
        ),
        (
            "skewed rows",
            GenKind::RowSkew {
                n_rows: 18_000,
                n_cols: 18_000,
                min_len: 2,
                alpha: 0.9,
                max_len: 2_000,
            },
        ),
    ];

    let sim = Simulator::default();
    println!(
        "\n{:<16} {:>12} {:>12} {:>14} {:>10}",
        "matrix", "recommended", "actual best", "rec. time (us)", "slowdown"
    );
    for (i, (name, kind)) in probes.into_iter().enumerate() {
        let m: CsrMatrix<f64> = MatrixSpec {
            name: name.into(),
            kind,
            seed: 1000 + i as u64,
        }
        .generate();
        let rec = advisor.recommend(&m).format;

        // Ground truth from the simulator.
        let mut best: Option<(Format, f64)> = None;
        let mut rec_time = f64::NAN;
        for fmt in Format::ALL {
            if let Ok(sm) = SparseMatrix::from_csr(&m, fmt) {
                let t = sim.measure(&sm, env.arch(), env.precision, 5).time_s;
                if fmt == rec {
                    rec_time = t;
                }
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((fmt, t));
                }
            }
        }
        let (bf, bt) = best.expect("some format measurable");
        println!(
            "{:<16} {:>12} {:>12} {:>14.2} {:>9.2}x",
            name,
            rec.label(),
            bf.label(),
            rec_time * 1e6,
            rec_time / bt
        );
    }
    println!("\n(slowdown 1.00x = the advisor picked the true best format)");
}
