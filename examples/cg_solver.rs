//! Conjugate-gradient solver on top of the format advisor — the paper's
//! motivating scenario: an iterative scientific application performs
//! thousands of SpMVs with the *same* matrix, so picking the right storage
//! format once pays off on every iteration.
//!
//! Solves the 2-D Poisson problem (5-point Laplacian) with plain CG, using
//! the format the advisor recommends, and reports how much simulated GPU
//! time the recommendation saves over the worst format choice.
//!
//! Run with: `cargo run --release --example cg_solver`

use spmv_corpus::{GenKind, MatrixSpec};
use spmv_gpusim::{GpuArch, Simulator};
use spmv_matrix::{CsrMatrix, Format, Precision, SparseMatrix};

/// Plain conjugate gradient for SPD `A x = b`; returns (x, iterations).
fn conjugate_gradient(
    a: &SparseMatrix<f64>,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> (Vec<f64>, usize) {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    let mut ap = vec![0.0; n];
    for it in 0..max_iters {
        if rs_old.sqrt() <= tol {
            return (x, it);
        }
        a.spmv(&p, &mut ap);
        let alpha = rs_old / p.iter().zip(&ap).map(|(a, b)| a * b).sum::<f64>();
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    (x, max_iters)
}

fn main() {
    // 120x120 Poisson grid: SPD, the classic CG benchmark.
    let grid = 120usize;
    let a_csr: CsrMatrix<f64> = MatrixSpec {
        name: "poisson".into(),
        kind: GenKind::Stencil2D { gx: grid, gy: grid },
        seed: 0,
    }
    .generate();
    let n = a_csr.n_rows();
    println!(
        "Poisson {grid}x{grid}: {} unknowns, {} non-zeros",
        n,
        a_csr.nnz()
    );

    // Simulated per-SpMV cost of every format on a P100 (double precision).
    let sim = Simulator::noiseless();
    let arch = &GpuArch::P100;
    let mut costs: Vec<(Format, f64)> = Format::ALL
        .iter()
        .filter_map(|&f| {
            SparseMatrix::from_csr(&a_csr, f)
                .ok()
                .map(|m| (f, sim.measure(&m, arch, Precision::Double, 0).time_s))
        })
        .collect();
    costs.sort_by(|a, b| a.1.total_cmp(&b.1));
    let (best_fmt, best_t) = costs[0];
    let (worst_fmt, worst_t) = *costs.last().expect("non-empty");

    // Solve with the best format (the math is identical in every format —
    // CG's convergence only cares about A).
    let a = SparseMatrix::from_csr(&a_csr, best_fmt).expect("convertible");
    let b = vec![1.0; n];
    let (x, iters) = conjugate_gradient(&a, &b, 1e-8, 4 * n);

    // Verify the residual.
    let mut ax = vec![0.0; n];
    a.spmv(&x, &mut ax);
    let residual: f64 = ax
        .iter()
        .zip(&b)
        .map(|(l, r)| (l - r) * (l - r))
        .sum::<f64>()
        .sqrt();
    println!("CG converged in {iters} iterations, |Ax - b| = {residual:.2e}");

    println!("\nper-SpMV simulated cost on {} (double):", arch.name);
    for (f, t) in &costs {
        println!("  {:<10} {:>8.2} us", f.label(), t * 1e6);
    }
    let saved = (worst_t - best_t) * iters as f64;
    println!(
        "\nover {iters} iterations, {} instead of {} saves {:.2} ms of simulated GPU time \
         ({:.1}x speedup)",
        best_fmt.label(),
        worst_fmt.label(),
        saved * 1e3,
        worst_t / best_t
    );
}
