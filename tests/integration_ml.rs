//! Cross-crate integration: the ML stack trained on real (simulated) label
//! data — not toy blobs — reproduces the paper's qualitative findings on a
//! tiny corpus: structure features beat O(1) features, and every model
//! family clears the majority-class baseline.

use spmv_core::{
    evaluate_classifier, evaluate_regressor, ClassificationTask, Env, LabeledCorpus, ModelKind,
    RegModelKind, RegressionTask, SearchBudget,
};
use spmv_corpus::{CorpusScale, SyntheticSuite};
use spmv_features::FeatureSet;
use spmv_gpusim::Simulator;
use spmv_matrix::Format;

fn corpus() -> LabeledCorpus {
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 2718);
    LabeledCorpus::collect(&suite, &Simulator::default(), 4)
}

#[test]
fn structure_features_add_information_over_o1_features() {
    let corpus = corpus();
    let env = Env::ALL[1]; // K80c double
    let t1 = ClassificationTask::build(&corpus, env, &Format::BASIC, FeatureSet::Set1, false);
    let t12 = ClassificationTask::build(&corpus, env, &Format::BASIC, FeatureSet::Set12, false);
    // Average over a few split seeds to damp small-sample noise.
    let avg = |task: &ClassificationTask| -> f64 {
        [1u64, 2, 3]
            .iter()
            .map(|&s| {
                evaluate_classifier(
                    &spmv_ml::Executor::serial(),
                    ModelKind::Xgboost,
                    task,
                    s,
                    SearchBudget::Quick,
                )
                .accuracy
            })
            .sum::<f64>()
            / 3.0
    };
    let a1 = avg(&t1);
    let a12 = avg(&t12);
    assert!(
        a12 + 0.02 >= a1,
        "richer features should not hurt: set1 {a1:.2} vs set12 {a12:.2}"
    );
}

#[test]
fn all_model_families_beat_majority_class() {
    let corpus = corpus();
    let env = Env::ALL[3]; // P100 double
    let task = ClassificationTask::build(&corpus, env, &Format::ALL, FeatureSet::Set12, true);
    let hist = task.class_histogram();
    let majority = *hist.iter().max().expect("non-empty") as f64 / task.len() as f64;
    for kind in ModelKind::ALL {
        let acc = evaluate_classifier(
            &spmv_ml::Executor::new(2),
            kind,
            &task,
            9,
            SearchBudget::Quick,
        )
        .accuracy;
        assert!(
            acc > majority - 0.15,
            "{}: {acc:.2} far below majority {majority:.2}",
            kind.label()
        );
    }
}

#[test]
fn regression_rme_is_far_below_trivial_predictor() {
    let corpus = corpus();
    let env = Env::ALL[0];
    let task = RegressionTask::build(&corpus, env, &Format::ALL, FeatureSet::Set123);
    let out = evaluate_regressor(RegModelKind::MlpEnsemble, &task, 11, SearchBudget::Quick);
    // Trivial predictor: the global mean time. Its RME on a corpus spanning
    // orders of magnitude is enormous (>> 1).
    let mean = task.y.iter().sum::<f64>() / task.y.len() as f64;
    let trivial: f64 = out
        .measured
        .iter()
        .map(|m| (mean - m).abs() / m)
        .sum::<f64>()
        / out.measured.len() as f64;
    assert!(
        out.rme < 0.5 * trivial,
        "model RME {:.2} not far below trivial {:.2}",
        out.rme,
        trivial
    );
}

#[test]
fn labels_are_stable_across_collection_runs() {
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 555);
    let a = LabeledCorpus::collect(&suite, &Simulator::default(), 1);
    let b = LabeledCorpus::collect(&suite, &Simulator::default(), 3);
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.times, rb.times, "{}", ra.name);
        assert_eq!(ra.features, rb.features);
    }
}
