//! Artifact-envelope compatibility across the feature-vector v2 widening
//! (PR-9): envelopes now record how many input features the payload's
//! model consumes, so a pre-scenario (17-matrix-feature, arity-7
//! projection) artifact and a scenario-widened one can never be loaded
//! into the wrong reader silently — the failure is a typed
//! [`ArtifactError::FeatureArityMismatch`] at the library level and exit
//! code 4 at the CLI, never a misindexed advisor.

use std::process::Command;

use spmv_core::{ArtifactError, Env, FormatAdvisor, LabeledCorpus, Scenario, SearchBudget};
use spmv_corpus::{CorpusScale, GenKind, MatrixSpec, SyntheticSuite};
use spmv_gpusim::Simulator;
use spmv_matrix::CsrMatrix;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("spmv_artifact_compat_{name}"));
    std::fs::create_dir_all(&d).expect("mk tmpdir");
    d
}

/// Rewrite a saved artifact as a PR-7-era envelope: same payload, same
/// checksum, but no `feature_arity` key (the field did not exist yet).
fn strip_arity(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).expect("read artifact");
    let mut v: serde_json::Value = serde_json::from_str(&text).expect("parse artifact");
    let serde_json::Value::Map(entries) = &mut v else {
        panic!("envelope must be a map");
    };
    let before = entries.len();
    entries.retain(|(k, _)| k != "feature_arity");
    assert_eq!(
        entries.len(),
        before - 1,
        "arity key present in current envelopes"
    );
    std::fs::write(path, serde_json::to_string(&v).expect("json")).expect("write artifact");
}

#[test]
fn pr7_era_envelope_is_rejected_with_a_typed_arity_mismatch() {
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 611);
    let corpus = LabeledCorpus::collect(&suite, &Simulator::default(), 2);
    let advisor = FormatAdvisor::train(&corpus, Env::ALL[3], SearchBudget::Quick);
    let path = tmpdir("legacy").join("advisor.json");
    advisor.save(&path).expect("save");

    // The pristine artifact loads; its legacy twin must not.
    FormatAdvisor::load(&path).expect("current envelope loads");
    strip_arity(&path);
    match FormatAdvisor::load(&path) {
        Err(ArtifactError::FeatureArityMismatch { artifact, expected }) => {
            assert_eq!(artifact, 0, "absent arity field must read as 0");
            assert_eq!(
                expected, 7,
                "the payload's model consumes the 7-feature projection"
            );
        }
        Err(e) => panic!("expected FeatureArityMismatch, got {e}"),
        Ok(_) => panic!("a legacy envelope must not load"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn advisor_cli_exits_4_on_a_legacy_envelope() {
    let dir = tmpdir("cli");
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 612);
    let corpus = LabeledCorpus::collect(&suite, &Simulator::default(), 2);
    let advisor = FormatAdvisor::train(&corpus, Env::ALL[3], SearchBudget::Quick);
    let model = dir.join("legacy.json");
    advisor.save(&model).expect("save");
    strip_arity(&model);

    let mtx = dir.join("probe.mtx");
    std::fs::write(
        &mtx,
        "%%MatrixMarket matrix coordinate real general\n\
         4 4 8\n1 1 2.0\n1 2 1.0\n2 2 2.0\n2 3 1.0\n3 3 2.0\n3 4 1.0\n4 4 2.0\n4 1 1.0\n",
    )
    .expect("write mtx");

    let out = Command::new(env!("CARGO_BIN_EXE_spmv-advisor"))
        .arg(&mtx)
        .arg("--model")
        .arg(&model)
        .output()
        .expect("run spmv-advisor");
    assert_eq!(
        out.status.code(),
        Some(4),
        "a rejected artifact is exit 4; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("feature-arity mismatch"),
        "the one-line error must name the typed failure, got: {stderr}"
    );
    std::fs::remove_file(&model).ok();
    std::fs::remove_file(&mtx).ok();
}

#[test]
fn scenario_artifact_round_trips_with_widened_arity() {
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 613);
    let sc = Scenario::ALL[2]; // gpu-spmm16
    let corpus = LabeledCorpus::collect_scenario(&suite, sc, 2);
    let env = Env::ALL[3];
    let advisor = FormatAdvisor::train_for_scenario(&corpus, sc, env, SearchBudget::Quick);
    assert_eq!(
        advisor.feature_arity(),
        15,
        "v2 layout: 7 projected matrix features + the 8-number scenario descriptor"
    );

    let path = tmpdir("scenario").join("advisor.json");
    advisor.save(&path).expect("save");
    let info = FormatAdvisor::inspect_artifact(&path).expect("inspect");
    assert_eq!(
        info.feature_arity, 15,
        "envelope must record the widened arity"
    );
    assert!(!info.stale);

    // The deployed copy behaves identically on unseen structures.
    let deployed = FormatAdvisor::load(&path).expect("scenario artifact loads");
    assert_eq!(deployed.feature_arity(), 15);
    for (i, kind) in [
        GenKind::Stencil2D { gx: 48, gy: 48 },
        GenKind::Banded {
            n: 3_000,
            half_width: 5,
            fill: 1.0,
        },
    ]
    .into_iter()
    .enumerate()
    {
        let m: CsrMatrix<f64> = MatrixSpec {
            name: format!("probe{i}"),
            kind,
            seed: 7_000 + i as u64,
        }
        .generate();
        assert_eq!(advisor.recommend(&m), deployed.recommend(&m));
    }

    // A scenario artifact presented to a PR-7-era reader would carry
    // arity 15 against an expectation of 7 — model that direction by
    // forging the envelope's arity down and watching the typed rejection.
    let text = std::fs::read_to_string(&path).expect("read");
    let mut v: serde_json::Value = serde_json::from_str(&text).expect("parse");
    let serde_json::Value::Map(entries) = &mut v else {
        panic!("envelope must be a map");
    };
    let mut forged = false;
    for (k, val) in entries.iter_mut() {
        if k == "feature_arity" {
            *val = serde_json::Value::U64(7);
            forged = true;
        }
    }
    assert!(forged, "arity key present");
    std::fs::write(&path, serde_json::to_string(&v).expect("json")).expect("write");
    match FormatAdvisor::load(&path) {
        Err(ArtifactError::FeatureArityMismatch { artifact, expected }) => {
            assert_eq!((artifact, expected), (7, 15));
        }
        Err(e) => panic!("expected FeatureArityMismatch, got {e}"),
        Ok(_) => panic!("a forged-arity envelope must not load"),
    }
    std::fs::remove_file(&path).ok();
}
