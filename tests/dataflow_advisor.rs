//! CLI-level pinning for the SpGEMM dataflow subsystem (PR-10):
//! `--list-envs` enumerates the whole scenario grid, a dataflow artifact
//! ships through the versioned envelope with its own kind, and the kind
//! gate holds at the process boundary (exit 4), not just in the library.

use std::process::Command;

use spmv_core::{DataflowAdvisor, Env, LabelEnvironment, LabeledCorpus, Scenario, SearchBudget};
use spmv_corpus::{CorpusScale, SyntheticSuite};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("spmv_dataflow_cli_{name}"));
    std::fs::create_dir_all(&d).expect("mk tmpdir");
    d
}

fn write_probe_mtx(dir: &std::path::Path) -> std::path::PathBuf {
    let mtx = dir.join("probe.mtx");
    std::fs::write(
        &mtx,
        "%%MatrixMarket matrix coordinate real general\n\
         4 4 8\n1 1 2.0\n1 2 1.0\n2 2 2.0\n2 3 1.0\n3 3 2.0\n3 4 1.0\n4 4 2.0\n4 1 1.0\n",
    )
    .expect("write mtx");
    mtx
}

#[test]
fn list_envs_enumerates_every_train_env_tag() {
    let out = Command::new(env!("CARGO_BIN_EXE_spmv-advisor"))
        .arg("--list-envs")
        .output()
        .expect("run spmv-advisor");
    assert!(out.status.success(), "--list-envs must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for tag in ["sim", "cpu-native", "cpu-synthetic"] {
        assert!(stdout.contains(tag), "missing environment tag {tag}");
    }
    for sc in Scenario::ALL {
        assert!(
            stdout.contains(sc.tag()),
            "missing scenario tag {}",
            sc.tag()
        );
        // Every listed tag must round-trip through the --train-env parser.
        assert!(
            LabelEnvironment::parse(sc.tag()).is_some(),
            "{} listed but not parseable",
            sc.tag()
        );
        let kind = if sc.is_spgemm() { "dataflow" } else { "format" };
        let line = stdout
            .lines()
            .find(|l| l.starts_with(sc.tag()))
            .unwrap_or_else(|| panic!("no line for {}", sc.tag()));
        assert!(
            line.contains(&format!("{kind} advisor")),
            "{}: expected {kind} advisor, got: {line}",
            sc.tag()
        );
    }
}

#[test]
fn dataflow_artifact_ships_through_the_envelope_with_its_own_kind() {
    let dir = tmpdir("envelope");
    let mtx = write_probe_mtx(&dir);
    let model = dir.join("dataflow.json");

    // Train at the library level (the CLI would retrain the same corpus;
    // this keeps the test hermetic and off the shared results/ cache).
    let sc = Scenario::SPGEMM_CELLS[0];
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 1021);
    let corpus = LabeledCorpus::collect_scenario(&suite, sc, 2);
    let advisor =
        DataflowAdvisor::train_for_scenario(&corpus, sc, Env::ALL[3], SearchBudget::Quick)
            .expect("tiny corpus trains");
    advisor.save(&model).expect("save artifact");

    // --model-info discloses the kind and the widened arity.
    let out = Command::new(env!("CARGO_BIN_EXE_spmv-advisor"))
        .arg("--model-info")
        .arg(&model)
        .arg("--json")
        .output()
        .expect("run spmv-advisor");
    assert!(
        out.status.success(),
        "--model-info must accept the artifact"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"kind\":\"dataflow\""), "got: {stdout}");
    assert!(stdout.contains("\"feature_arity\":15"), "got: {stdout}");

    // A dataflow run with the saved model recommends without retraining.
    let out = Command::new(env!("CARGO_BIN_EXE_spmv-advisor"))
        .arg(&mtx)
        .arg("--train-env")
        .arg(sc.tag())
        .arg("--model")
        .arg(&model)
        .arg("--json")
        .output()
        .expect("run spmv-advisor");
    assert!(
        out.status.success(),
        "dataflow recommend failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"dataflow\":"), "got: {stdout}");
    assert!(stdout.contains("\"times_us\":"), "got: {stdout}");

    // The format loader must reject the dataflow artifact at the process
    // boundary: exit 4 and the typed kind-mismatch message.
    let out = Command::new(env!("CARGO_BIN_EXE_spmv-advisor"))
        .arg(&mtx)
        .arg("--model")
        .arg(&model)
        .output()
        .expect("run spmv-advisor");
    assert_eq!(
        out.status.code(),
        Some(4),
        "a dataflow artifact in the format loader is exit 4"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("advisor-kind mismatch"),
        "the one-line error must name the kind gate, got: {stderr}"
    );

    std::fs::remove_file(&model).ok();
    std::fs::remove_file(&mtx).ok();
}
