//! Cross-crate integration: corpus generators feed every storage format,
//! all formats agree with each other numerically (sequential and parallel),
//! and the GPU model prices them coherently.

use spmv_corpus::{CorpusScale, GenKind, MatrixSpec, SyntheticSuite};
use spmv_gpusim::{GpuArch, KernelProfile, Simulator};
use spmv_matrix::{parallel, CsrMatrix, Format, Precision, SparseMatrix};

fn spmv_reference(csr: &CsrMatrix<f64>, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; csr.n_rows()];
    csr.spmv(x, &mut y);
    y
}

#[test]
fn every_generator_family_round_trips_through_every_format() {
    let kinds = vec![
        GenKind::Uniform {
            n_rows: 300,
            n_cols: 250,
            nnz: 2_000,
        },
        GenKind::Banded {
            n: 400,
            half_width: 5,
            fill: 0.8,
        },
        GenKind::Diagonal {
            n: 350,
            offsets: vec![-7, 0, 7],
        },
        GenKind::Stencil2D { gx: 18, gy: 20 },
        GenKind::Stencil3D {
            gx: 7,
            gy: 7,
            gz: 7,
        },
        GenKind::RMat {
            scale: 9,
            nnz: 3_000,
            probs: (0.57, 0.19, 0.19),
        },
        GenKind::Block {
            grid: 40,
            block_size: 4,
            blocks_per_row: 2,
        },
        GenKind::RowSkew {
            n_rows: 300,
            n_cols: 300,
            min_len: 2,
            alpha: 1.1,
            max_len: 80,
        },
        GenKind::Clustered {
            n_rows: 200,
            n_cols: 240,
            runs: 3,
            run_len: 6,
        },
    ];
    for (i, kind) in kinds.into_iter().enumerate() {
        let spec = MatrixSpec {
            name: format!("it{i}"),
            kind,
            seed: 77 + i as u64,
        };
        let csr: CsrMatrix<f64> = spec.generate();
        let x: Vec<f64> = (0..csr.n_cols())
            .map(|j| ((j * 13 + 7) % 11) as f64 - 5.0)
            .collect();
        let expect = spmv_reference(&csr, &x);
        for fmt in Format::ALL {
            let m = SparseMatrix::from_csr(&csr, fmt)
                .unwrap_or_else(|e| panic!("{}: {fmt} conversion failed: {e}", spec.name));
            // Sequential kernel agrees.
            let mut y = vec![0.0; csr.n_rows()];
            m.spmv(&x, &mut y);
            for (r, (a, b)) in expect.iter().zip(&y).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "{} {fmt} row {r}: {a} vs {b}",
                    spec.name
                );
            }
            // Parallel kernel agrees.
            let mut yp = vec![f64::NAN; csr.n_rows()];
            parallel::spmv_parallel(&m, &x, &mut yp, 4);
            for (r, (a, b)) in expect.iter().zip(&yp).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "{} {fmt} parallel row {r}: {a} vs {b}",
                    spec.name
                );
            }
            // Round trip preserves the matrix.
            assert_eq!(m.to_csr(), csr, "{} {fmt} round trip", spec.name);
        }
    }
}

#[test]
fn simulator_prices_all_formats_on_a_suite_sample() {
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 31);
    let sim = Simulator::default();
    for spec in suite.specs.iter().step_by(9) {
        let csr: CsrMatrix<f64> = spec.generate();
        for fmt in Format::ALL {
            let Ok(m) = SparseMatrix::from_csr(&csr, fmt) else {
                continue; // legitimate ELL padding failure
            };
            let profile = KernelProfile::of(&m);
            assert_eq!(profile.nnz, csr.nnz(), "{}", spec.name);
            for arch in &GpuArch::PAPER_MACHINES {
                for prec in Precision::ALL {
                    let meas = sim.measure_profile(&profile, arch, prec, 3);
                    assert!(
                        meas.time_s.is_finite() && meas.time_s > 0.0,
                        "{} {fmt} {prec} on {}",
                        spec.name,
                        arch.name
                    );
                    assert!(meas.gflops >= 0.0);
                }
            }
        }
    }
}

#[test]
fn faster_machine_and_lower_precision_are_never_slower_by_much() {
    // Sanity across the whole grid: P100 >= K80c and single <= double,
    // within noise, for a bandwidth-bound matrix.
    let spec = MatrixSpec {
        name: "grid".into(),
        kind: GenKind::Stencil2D { gx: 150, gy: 150 },
        seed: 5,
    };
    let csr: CsrMatrix<f64> = spec.generate();
    let sim = Simulator::noiseless();
    for fmt in Format::ALL {
        let m = SparseMatrix::from_csr(&csr, fmt).expect("convertible");
        let k_single = sim.measure(&m, &GpuArch::K80C, Precision::Single, 0).time_s;
        let k_double = sim.measure(&m, &GpuArch::K80C, Precision::Double, 0).time_s;
        let p_double = sim.measure(&m, &GpuArch::P100, Precision::Double, 0).time_s;
        assert!(k_single <= k_double, "{fmt}: single slower than double");
        assert!(p_double <= k_double, "{fmt}: P100 slower than K80c");
    }
}
