//! The fault matrix: every injection site crossed with full and partial
//! injection rates, end to end. The contract under test is the issue's
//! acceptance bar — every injected fault surfaces as a typed error, a
//! structured [`LabelFailure`], or a heuristic-fallback [`Recommendation`];
//! nothing panics; and a labeling run with injected per-format failures
//! still yields a corpus the downstream pipeline can train and evaluate on.

use spmv_core::{
    read_matrix_market_file_with, Env, FaultPlan, FaultSite, FormatAdvisor, LabelOutcome,
    LabeledCorpus, Recommendation, RecommendationSource, SearchBudget,
};
use spmv_corpus::{CorpusScale, GenKind, MatrixSpec, SyntheticSuite};
use spmv_gpusim::Simulator;
use spmv_matrix::{mm, CsrMatrix, Format, MatrixError};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("spmv_faults_{name}"));
    std::fs::create_dir_all(&d).expect("mk tmpdir");
    d
}

fn probe_matrix() -> CsrMatrix<f64> {
    MatrixSpec {
        name: "probe".into(),
        kind: GenKind::Stencil2D { gx: 40, gy: 40 },
        seed: 7,
    }
    .generate()
}

/// Write a small valid MatrixMarket file and return its path.
fn valid_mtx(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("valid.mtx");
    std::fs::write(
        &path,
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 2.0\n",
    )
    .expect("write mtx");
    path
}

#[test]
fn every_site_at_full_rate_yields_a_typed_outcome_not_a_panic() {
    let dir = tmpdir("matrix");
    let mtx = valid_mtx(&dir);
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 301);
    let sim = Simulator::default();
    let m = probe_matrix();

    // A trained advisor + saved artifact to exercise the model sites.
    let clean = LabeledCorpus::collect(&suite, &sim, 2);
    let advisor = FormatAdvisor::train(&clean, Env::ALL[1], SearchBudget::Quick);
    let artifact = dir.join("advisor.json");
    advisor.save(&artifact).expect("save artifact");

    for site in FaultSite::ALL {
        let plan = FaultPlan::always(site);
        match site {
            FaultSite::MmParse => {
                let err = read_matrix_market_file_with::<f64>(&mtx, &plan)
                    .expect_err("full-rate mm-parse injection must fail");
                assert!(
                    matches!(&err, MatrixError::Parse { msg, .. } if msg.contains("injected fault")),
                    "wrong error: {err}"
                );
                // The same file still parses without the plan.
                assert!(mm::read_matrix_market_file::<f64, _>(&mtx).is_ok());
            }
            FaultSite::Conversion | FaultSite::Measurement | FaultSite::WorkerPanic => {
                let corpus = LabeledCorpus::collect_with(&suite, &sim, 3, &plan);
                assert_eq!(corpus.records.len(), suite.len(), "{site}: corpus aligned");
                for r in &corpus.records {
                    assert!(
                        !r.failures.is_empty(),
                        "{site}: every record must carry a failure"
                    );
                    assert!(matches!(
                        r.outcome(Env::ALL[0], Format::Csr),
                        LabelOutcome::Failed(_)
                    ));
                }
            }
            FaultSite::FeatureExtraction => {
                // In labeling: degraded features, recorded failure.
                let corpus = LabeledCorpus::collect_with(&suite, &sim, 3, &plan);
                for r in &corpus.records {
                    assert!(r.failures.iter().any(|f| f.reason.contains("injected")));
                }
                // In the advisor: heuristic fallback, never a panic.
                let rec: Recommendation = advisor.recommend_with(&m, &plan);
                assert_eq!(rec.source, RecommendationSource::Heuristic);
                assert!(Format::ALL.contains(&rec.format));
            }
            FaultSite::ModelLoad => {
                let err = match FormatAdvisor::load_with(&artifact, &plan) {
                    Err(e) => e,
                    Ok(_) => panic!("full-rate model-load injection must fail"),
                };
                assert!(err.to_string().contains("injected fault"), "{err}");
                // The same artifact still loads without the plan.
                assert!(FormatAdvisor::load(&artifact).is_ok());
            }
        }
    }
    std::fs::remove_file(&artifact).ok();
    std::fs::remove_file(&mtx).ok();
}

#[test]
fn partially_failed_labeling_still_trains_and_evaluates() {
    // Inject a realistic mixed failure load. Rates are per *decision* and
    // a record is only "usable" if all 6 conversions, all 24 measurement
    // cells, and its worker survive, so per-cell rates must stay small for
    // most records to make it through: survival here is roughly
    // 0.98^6 * 0.995^24 * 0.98 ~ 77%.
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 302);
    let plan = FaultPlan::new(77)
        .inject(FaultSite::Conversion, 0.02)
        .inject(FaultSite::Measurement, 0.005)
        .inject(FaultSite::WorkerPanic, 0.02);
    let corpus = LabeledCorpus::collect_with(&suite, &Simulator::default(), 4, &plan);

    assert_eq!(corpus.records.len(), suite.len());
    let hit = corpus
        .records
        .iter()
        .filter(|r| !r.failures.is_empty())
        .count();
    assert!(hit > 0, "the plan should hit something at these rates");
    let usable = corpus.usable(&Format::ALL);
    assert!(
        usable.len() > suite.len() / 2,
        "most of the corpus survives ({}/{})",
        usable.len(),
        suite.len()
    );

    // The degraded corpus still feeds the whole downstream pipeline.
    let env = Env::ALL[1];
    let advisor = FormatAdvisor::train(&corpus, env, SearchBudget::Quick);
    let m = probe_matrix();
    let rec = advisor.recommend(&m);
    assert!(Format::ALL.contains(&rec.format));
    assert_eq!(rec.source, RecommendationSource::Model);
    let times = advisor.predict_times(&m);
    assert_eq!(times.len(), Format::ALL.len());
    assert!(times.iter().all(|(_, t)| t.is_finite()));
}

#[test]
fn fault_injection_is_deterministic_across_thread_counts() {
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 303);
    let plan = FaultPlan::new(5)
        .inject(FaultSite::Conversion, 0.2)
        .inject(FaultSite::WorkerPanic, 0.15);
    let sim = Simulator::default();
    let a = LabeledCorpus::collect_with(&suite, &sim, 1, &plan);
    let b = LabeledCorpus::collect_with(&suite, &sim, 4, &plan);
    let c = LabeledCorpus::collect_with(&suite, &sim, 7, &plan);
    for ((ra, rb), rc) in a.records.iter().zip(&b.records).zip(&c.records) {
        assert_eq!(ra.times, rb.times);
        assert_eq!(ra.failures, rb.failures);
        assert_eq!(ra.times, rc.times);
        assert_eq!(ra.failures, rc.failures);
    }
}

#[test]
fn advisor_cli_contract_matches_artifact_errors() {
    // Corrupt every byte-level failure mode the CLI maps to exit code 4
    // and confirm the library rejects each with a distinct typed error.
    let dir = tmpdir("artifact");
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 304);
    let corpus = LabeledCorpus::collect(&suite, &Simulator::default(), 2);
    let advisor = FormatAdvisor::train(&corpus, Env::ALL[0], SearchBudget::Quick);
    let path = dir.join("advisor.json");
    advisor.save(&path).expect("save");

    // Truncation.
    let full = std::fs::read(&path).expect("read");
    std::fs::write(&path, &full[..full.len() - 40]).expect("truncate");
    assert!(FormatAdvisor::load(&path).is_err());

    // Garbage.
    std::fs::write(&path, b"not json at all").expect("garbage");
    assert!(FormatAdvisor::load(&path).is_err());

    // Pre-envelope raw model dump (what an old release would have
    // written): structurally JSON, but not an artifact.
    std::fs::write(&path, b"{\"env\":{},\"formats\":[]}").expect("legacy");
    assert!(FormatAdvisor::load(&path).is_err());

    // Flipped payload byte.
    std::fs::write(&path, &full).expect("restore");
    let mut bytes = full.clone();
    let payload_pos = bytes
        .windows(9)
        .position(|w| w == b"\"payload\"")
        .expect("payload field");
    for b in &mut bytes[payload_pos + 20..payload_pos + 21] {
        *b = if *b == b'x' { b'y' } else { b'x' };
    }
    std::fs::write(&path, &bytes).expect("flip");
    assert!(FormatAdvisor::load(&path).is_err());

    // Intact artifact still loads after all that.
    std::fs::write(&path, &full).expect("restore");
    assert!(FormatAdvisor::load(&path).is_ok());
    std::fs::remove_file(&path).ok();
}
