//! Differential and property pinning for the multi-scenario label space
//! (the PR-9 tentpole invariant): the `(SpMV, paper-GPUs)` corner of the
//! scenario grid IS the simulator path — bit for bit, committed cache
//! bytes included — and the op transforms obey their analytic envelopes
//! on every generator family.
//!
//! Three layers of the same guarantee:
//! 1. an `SpMM k=1` collection through the op-aware engine serializes
//!    byte-identically to `results/labels_tiny.json` at 1 and 4 threads
//!    (so the scenario engine cannot drift the pre-scenario artifacts);
//! 2. the same collection matches a corpus rebuilt serially through
//!    [`spmv_core::measure_matrix_outcomes_reference`], the retained
//!    value-carrying oracle — on a seed the golden cache never saw;
//! 3. at the identity points (`k = 1`, `iters = 1`) every profile count
//!    and predicted time is bit-equal to plain SpMV, and the solver's
//!    warm iteration obeys `warm <= cold` (with exact equality under a
//!    zero-sized x-cache) for every generator family and architecture.

use std::path::Path;

use proptest::prelude::*;
use spmv_core::{
    measure_matrix_outcomes_reference, EnvSpec, FaultPlan, LabeledCorpus, MatrixRecord,
};
use spmv_corpus::{CorpusScale, SyntheticSuite};
use spmv_features::extract;
use spmv_gpusim::{
    predict_op_seconds, predict_seconds, solver_warm_profile, spmm_profile, GpuArch, KernelProfile,
    Simulator, SpOp,
};
use spmv_matrix::{CsrMatrix, Format, Precision, SparseMatrix};

/// The exact suite behind `results/labels_tiny.json`.
fn tiny_suite() -> SyntheticSuite {
    SyntheticSuite::sample(CorpusScale::Tiny, 20180801)
}

/// The four machine models of the scenario grid.
fn all_machines() -> impl Iterator<Item = &'static GpuArch> {
    GpuArch::PAPER_MACHINES
        .iter()
        .chain(GpuArch::MANYCORE_MACHINES.iter())
}

/// Label `suite` through the op-aware engine at the SpMM k=1 identity
/// point, with the simulator's own `EnvSpec` so even the serialized
/// header matches a plain `collect`.
fn spmm_k1_corpus(suite: &SyntheticSuite, threads: usize) -> LabeledCorpus {
    LabeledCorpus::collect_op_with(
        suite,
        &Simulator::default(),
        SpOp::Spmm { k: 1 },
        &GpuArch::PAPER_MACHINES,
        threads,
        &FaultPlan::none(),
        EnvSpec::default(),
    )
}

#[test]
fn spmm_k1_reproduces_the_committed_simulator_cache_byte_for_byte() {
    let cache = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/labels_tiny.json");
    let committed =
        std::fs::read_to_string(&cache).unwrap_or_else(|e| panic!("read {}: {e}", cache.display()));

    let suite = tiny_suite();
    let serial = serde_json::to_string(&spmm_k1_corpus(&suite, 1)).expect("json");
    let threaded = serde_json::to_string(&spmm_k1_corpus(&suite, 4)).expect("json");
    assert_eq!(
        serial, threaded,
        "op-aware collection must not depend on the thread count"
    );
    assert_eq!(
        serial,
        committed.trim_end(),
        "SpMM k=1 through the scenario engine must reproduce the committed \
         pre-scenario cache byte for byte"
    );
}

#[test]
fn spmm_k1_matches_the_retained_value_carrying_oracle() {
    // A seed the golden cache never saw, so this is a genuine second
    // differential anchor rather than a re-read of the committed bytes.
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 913);
    let sim = Simulator::default();
    let plan = FaultPlan::none();
    let records: Vec<MatrixRecord> = suite
        .specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let csr: CsrMatrix<f64> = spec.generate();
            let (times, failures) =
                measure_matrix_outcomes_reference(&csr, &sim, spec.seed, &spec.name, &plan);
            MatrixRecord {
                name: spec.name.clone(),
                bucket: suite.bucket_of[i],
                family: spec.kind.family().to_string(),
                shape: (csr.n_rows(), csr.n_cols(), csr.nnz()),
                features: extract(&csr),
                times,
                failures,
                extra: Vec::new(),
            }
        })
        .collect();
    let oracle = LabeledCorpus {
        suite_seed: suite.seed,
        model_version: spmv_gpusim::MODEL_VERSION,
        env_spec: EnvSpec::default(),
        records,
    };
    assert_eq!(
        serde_json::to_string(&spmm_k1_corpus(&suite, 4)).expect("json"),
        serde_json::to_string(&oracle).expect("json"),
        "k=1 dense-block labels must equal the pre-structural oracle's"
    );
}

#[test]
fn identity_points_leave_every_profile_count_and_time_untouched() {
    // Per-profile statement of the differential anchor, over real corpus
    // structures and all four machine models: SpMM k=1 is the exact
    // profile identity, and both it and a 1-iteration solve predict the
    // plain SpMV time to the bit.
    let suite = tiny_suite();
    for spec in suite.specs.iter().step_by(7) {
        let csr: CsrMatrix<f64> = spec.generate();
        for fmt in Format::ALL {
            let Ok(m) = SparseMatrix::from_csr(&csr, fmt) else {
                continue;
            };
            let p = KernelProfile::of(&m);
            for arch in all_machines() {
                assert_eq!(
                    spmm_profile(&p, 1, arch.line_bytes as f64),
                    p,
                    "{}/{fmt}/{}: k=1 must not touch a count",
                    spec.name,
                    arch.name
                );
                for prec in Precision::ALL {
                    let spmv = predict_seconds(&p, arch, prec);
                    let k1 = predict_op_seconds(&p, arch, prec, SpOp::Spmm { k: 1 });
                    let s1 = predict_op_seconds(&p, arch, prec, SpOp::Solver { iters: 1 });
                    assert_eq!(spmv.to_bits(), k1.to_bits(), "{}/{fmt}", spec.name);
                    assert_eq!(spmv.to_bits(), s1.to_bits(), "{}/{fmt}", spec.name);
                }
            }
        }
    }
}

#[test]
fn solver_warm_iteration_never_exceeds_cold_on_any_generator_family() {
    // One representative matrix per generator family, every format that
    // converts, all four machines: the warm-iteration gather counts and
    // times are bounded by the cold ones, and a zero-sized x-cache is the
    // exact identity (nothing retained => nothing saved).
    let suite = tiny_suite();
    let mut families = std::collections::BTreeSet::new();
    for spec in &suite.specs {
        if !families.insert(spec.kind.family()) {
            continue;
        }
        let csr: CsrMatrix<f64> = spec.generate();
        for fmt in Format::ALL {
            let Ok(m) = SparseMatrix::from_csr(&csr, fmt) else {
                continue;
            };
            let p = KernelProfile::of(&m);
            assert_eq!(
                solver_warm_profile(&p, 0.0),
                p,
                "{}/{fmt}: zero x-cache must be the exact identity",
                spec.name
            );
            for arch in all_machines() {
                let warm_p = solver_warm_profile(&p, arch.l2_bytes as f64);
                for i in 0..2 {
                    assert!(
                        warm_p.gather_tx[i] <= p.gather_tx[i],
                        "{}/{fmt}/{}: warm gather exceeds cold",
                        spec.name,
                        arch.name
                    );
                }
                for prec in Precision::ALL {
                    let cold = predict_seconds(&p, arch, prec);
                    let warm = predict_seconds(&warm_p, arch, prec);
                    assert!(
                        warm <= cold,
                        "{}/{fmt}/{} {prec}: warm {warm} > cold {cold}",
                        spec.name,
                        arch.name
                    );
                    let avg = predict_op_seconds(&p, arch, prec, SpOp::Solver { iters: 8 });
                    assert!(
                        warm <= avg && avg <= cold,
                        "per-iteration average must bracket between warm and cold"
                    );
                }
            }
        }
    }
    assert!(
        families.len() >= 4,
        "the tiny suite must exercise several generator families, saw {families:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The analytic envelope of the warm-iteration transform, pointwise
    /// over arbitrary (cold transactions, x footprint, L2 size) triples.
    #[test]
    fn warm_gather_count_is_bounded_by_cold_and_exact_at_zero_cache(
        tx in 0.0f64..1e9,
        fp in 1.0f64..1e9,
        l2 in 0.0f64..1e8,
    ) {
        let warm = SpOp::solver_warm_gather_tx(tx, fp, l2);
        prop_assert!(warm >= 0.0);
        prop_assert!(warm <= tx, "warm {warm} > cold {tx}");
        // An x-cache sized to zero retains nothing: bit-exact identity.
        prop_assert_eq!(SpOp::solver_warm_gather_tx(tx, fp, 0.0), tx);
        // A fully resident footprint re-gathers nothing.
        if fp <= l2 {
            prop_assert_eq!(warm, 0.0);
        }
    }
}
