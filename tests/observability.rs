//! Property tests for the observability layer's two load-bearing claims:
//!
//! 1. The manifest's *deterministic* section is byte-identical regardless
//!    of thread count — including under an injected [`FaultPlan`] — so CI
//!    can diff it across schedules.
//! 2. With tracing disabled (the default), instrumentation is inert: a
//!    fresh tiny collection still reproduces the committed
//!    `results/labels_tiny.json` byte for byte.
//!
//! The tracer is process-global, so every test here takes `TRACER_LOCK`
//! and resets on entry; tests that must observe the *disabled* state run
//! in this same binary to stay serialized with the enabling ones.

use std::path::Path;
use std::sync::Mutex;

use spmv_core::{observe, FaultPlan, FaultSite, LabeledCorpus};
use spmv_corpus::{CorpusScale, SyntheticSuite};
use spmv_gpusim::Simulator;

static TRACER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_suite() -> SyntheticSuite {
    SyntheticSuite::sample(CorpusScale::Tiny, 20180801)
}

/// Run one traced collection and return (corpus json, deterministic line).
fn traced_collect(threads: usize, plan: &FaultPlan) -> (String, String) {
    observe::reset();
    observe::enable();
    let corpus = LabeledCorpus::collect_with(&tiny_suite(), &Simulator::default(), threads, plan);
    let json = serde_json::to_string(&corpus).expect("corpus json");
    let det = observe::deterministic_section();
    observe::disable();
    (json, det)
}

#[test]
fn deterministic_section_is_byte_identical_across_thread_counts() {
    let _g = lock();
    let plan = FaultPlan::none();
    let (corpus_1, det_1) = traced_collect(1, &plan);
    let (corpus_4, det_4) = traced_collect(4, &plan);
    assert_eq!(
        det_1, det_4,
        "deterministic section must not see the schedule"
    );
    assert_eq!(
        corpus_1, corpus_4,
        "corpus itself must stay schedule-invariant"
    );

    // The section is meaningful, not vacuously equal: labeling counters
    // and spans from the run are present.
    assert!(
        det_1.contains("\"labeling.cells_measured\""),
        "got: {det_1}"
    );
    assert!(det_1.contains("\"labeling/collect\""), "got: {det_1}");
    assert!(det_1.contains("\"labeling/matrix\""), "got: {det_1}");
}

#[test]
fn deterministic_section_is_schedule_invariant_under_injected_faults() {
    let _g = lock();
    // A mixed plan: some measurement cells fail, some conversions fail.
    // Fault decisions hash (site, key), never the thread, so both the
    // corpus and the fault tallies must match across thread counts.
    let plan = FaultPlan::new(77)
        .inject(FaultSite::Measurement, 0.2)
        .inject(FaultSite::Conversion, 0.1);
    let (corpus_1, det_1) = traced_collect(1, &plan);
    let (corpus_4, det_4) = traced_collect(4, &plan);
    assert_eq!(det_1, det_4, "fault tallies must not see the schedule");
    assert_eq!(corpus_1, corpus_4);

    // The plan actually fired: at least one injected-fault counter shows.
    assert!(det_1.contains("\"faults.injected."), "got: {det_1}");
    assert!(det_1.contains("\"labeling.failures\""), "got: {det_1}");
}

#[test]
fn manifest_is_valid_json_with_both_sections() {
    let _g = lock();
    observe::reset();
    observe::enable();
    observe::set_provenance("tool", "observability-test");
    {
        let _s = observe::span("test/unit");
        observe::counter("test.events", 3);
    }
    let manifest = observe::manifest();
    observe::disable();

    fn field<'v>(v: &'v serde_json::Value, key: &str) -> &'v serde_json::Value {
        v.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {key:?}"))
    }
    let v = serde_json::parse_value(&manifest).expect("manifest parses");
    let det = field(&v, "deterministic");
    assert_eq!(
        field(field(det, "provenance"), "tool").as_str(),
        Some("observability-test")
    );
    assert!(matches!(
        field(field(det, "counters"), "test.events"),
        serde_json::Value::U64(3) | serde_json::Value::I64(3)
    ));
    assert!(matches!(
        field(field(det, "spans"), "test/unit"),
        serde_json::Value::U64(1) | serde_json::Value::I64(1)
    ));
    let timing_span = field(field(field(&v, "timing"), "spans"), "test/unit");
    assert!(matches!(
        field(timing_span, "count"),
        serde_json::Value::U64(_) | serde_json::Value::I64(_)
    ));

    // Line layout is part of the contract: the deterministic section is
    // exactly line 2 (CI extracts it with `sed -n 2p`); timing follows
    // and may span several lines.
    let lines: Vec<&str> = manifest.lines().collect();
    assert_eq!(lines[0], "{");
    assert!(lines[1].starts_with("\"deterministic\": {"));
    assert!(lines[1].ends_with("},"));
    assert!(lines[2].starts_with("\"timing\": "));
    assert_eq!(*lines.last().expect("non-empty"), "}");
}

#[test]
fn disabled_tracer_reproduces_the_committed_label_cache() {
    let _g = lock();
    observe::reset();
    assert!(!observe::is_enabled(), "tracing must default to off");

    let cache = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/labels_tiny.json");
    let committed =
        std::fs::read_to_string(&cache).unwrap_or_else(|e| panic!("read {}: {e}", cache.display()));
    let fresh = serde_json::to_string(&LabeledCorpus::collect(
        &tiny_suite(),
        &Simulator::default(),
        2,
    ))
    .expect("json");
    assert_eq!(
        fresh,
        committed.trim_end(),
        "disabled tracing must be inert"
    );

    // And being disabled means nothing was recorded either.
    assert_eq!(observe::counter_value("labeling.cells_measured"), 0);
    assert_eq!(observe::counter_value("gpusim.measurements"), 0);
}

#[test]
fn enabled_tracer_does_not_change_artifact_bytes() {
    let _g = lock();
    // Stronger than the disabled case: even with tracing ON, the corpus
    // bytes match the committed cache — observation never perturbs results.
    let cache = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/labels_tiny.json");
    let committed =
        std::fs::read_to_string(&cache).unwrap_or_else(|e| panic!("read {}: {e}", cache.display()));
    let (fresh, _det) = traced_collect(2, &FaultPlan::none());
    assert_eq!(fresh, committed.trim_end());
}
