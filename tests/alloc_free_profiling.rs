//! Steady-state allocation audit for the structural profiling engine.
//!
//! A counting `#[global_allocator]` proves the PR-3 claim directly: once a
//! worker's [`StructureScratch`] is warm, deriving every format's
//! value-free view and profiling it allocates **zero** heap blocks — no
//! value plane, no per-format index copies, nothing. This file holds a
//! single test so no concurrent test can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use spmv_gpusim::{Dataflow, KernelProfile, SpgemmProfile};
use spmv_matrix::{
    CsrMatrix, CsrStructure, Format, FormatStructure, Precision, RowStats, SpgemmOperand,
    SpgemmSymbolic, StructureScratch, TripletBuilder,
};

/// Counts allocations (and growth reallocations) while armed; frees are
/// intentionally not counted — returning warm capacity is the whole point.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn banded(n: usize, half_width: usize) -> CsrMatrix<f64> {
    let mut b = TripletBuilder::<f64>::new(n, n);
    for r in 0..n {
        let lo = r.saturating_sub(half_width);
        let hi = (r + half_width + 1).min(n);
        for c in lo..hi {
            b.push(r, c, 1.0).expect("in bounds");
        }
    }
    b.build().to_csr()
}

#[test]
fn warm_scratch_profiles_every_format_with_zero_allocations() {
    let csr = banded(500, 4);
    let mut scratch = StructureScratch::new();

    // Warm-up pass: grows each scratch buffer to this matrix's high-water
    // mark across all six formats (this pass may allocate freely).
    let stats = RowStats::of(csr.row_ptr());
    for fmt in Format::ALL {
        let s = FormatStructure::build(&csr, fmt, &stats, &mut scratch).expect("well-behaved");
        std::hint::black_box(KernelProfile::of_structure(&s));
    }

    // Audited pass: the exact per-matrix work `collect_with` does for an
    // already-generated CSR — shared row analysis, six structural views,
    // six kernel profiles — must not touch the heap at all.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let stats = RowStats::of(csr.row_ptr());
    for fmt in Format::ALL {
        let s = FormatStructure::build(&csr, fmt, &stats, &mut scratch).expect("well-behaved");
        std::hint::black_box(KernelProfile::of_structure(&s));
    }
    ARMED.store(false, Ordering::SeqCst);

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "structural profiling with warm scratch must be allocation-free"
    );

    // Same discipline for the SpGEMM symbolic phase (the PR-10 tentpole
    // extension of this pin): once the transpose and marker scratch are
    // warm, the exact-flops pass, the sampled compression estimate, and
    // every dataflow's cost prediction are counting passes over borrowed
    // index slices — zero heap blocks for both operands.
    let view = CsrStructure {
        n_rows: csr.n_rows(),
        n_cols: csr.n_cols(),
        row_ptr: csr.row_ptr(),
        col_idx: csr.col_idx(),
    };
    for operand in [SpgemmOperand::AA, SpgemmOperand::AAt] {
        std::hint::black_box(SpgemmSymbolic::analyze(view, operand, 7, &mut scratch));
    }

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for operand in [SpgemmOperand::AA, SpgemmOperand::AAt] {
        let sym = SpgemmSymbolic::analyze(view, operand, 7, &mut scratch);
        let profile = SpgemmProfile::of_symbolic(&sym, csr.nnz());
        std::hint::black_box(profile.dataflow_features());
        for df in Dataflow::ALL {
            for arch in spmv_gpusim::GpuArch::PAPER_MACHINES.iter() {
                std::hint::black_box(profile.predict_seconds(df, arch, Precision::Double));
            }
        }
    }
    ARMED.store(false, Ordering::SeqCst);

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "symbolic SpGEMM analysis with warm scratch must be allocation-free"
    );
}
