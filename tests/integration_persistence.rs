//! Cross-crate persistence integration: everything the pipeline caches or
//! ships — labeled corpora, corpus manifests, and trained advisors —
//! round-trips through disk and keeps behaving identically.

use spmv_core::{Env, FormatAdvisor, LabeledCorpus, SearchBudget};
use spmv_corpus::{CorpusScale, GenKind, MatrixSpec, SyntheticSuite};
use spmv_gpusim::Simulator;
use spmv_matrix::{CsrMatrix, Format};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("spmv_persist_{name}"));
    std::fs::create_dir_all(&d).expect("mk tmpdir");
    d
}

#[test]
fn labeled_corpus_cache_round_trips_and_validates_version() {
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 404);
    let corpus = LabeledCorpus::collect(&suite, &Simulator::default(), 2);
    let dir = tmpdir("corpus");
    let path = dir.join("labels.json");
    corpus.save(&path).expect("save");

    // Round trip preserves every measurement bit-exactly.
    let back = LabeledCorpus::load(&path).expect("load");
    assert_eq!(back.records.len(), corpus.records.len());
    assert_eq!(back.model_version, spmv_gpusim::MODEL_VERSION);
    for (a, b) in corpus.records.iter().zip(&back.records) {
        assert_eq!(a.times, b.times);
        assert_eq!(a.features, b.features);
    }

    // load_or_collect trusts a matching cache...
    let again = LabeledCorpus::load_or_collect(&suite, &Simulator::default(), 2, &path);
    assert_eq!(again.records[0].times, corpus.records[0].times);

    // ...but re-collects when the model version is stale.
    let mut stale = corpus.clone();
    stale.model_version = 0;
    stale.save(&path).expect("save stale");
    let fresh = LabeledCorpus::load_or_collect(&suite, &Simulator::default(), 2, &path);
    assert_eq!(fresh.model_version, spmv_gpusim::MODEL_VERSION);

    std::fs::remove_file(&path).ok();
}

#[test]
fn trained_advisor_ships_without_its_corpus() {
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 405);
    let corpus = LabeledCorpus::collect(&suite, &Simulator::default(), 2);
    let advisor = FormatAdvisor::train(&corpus, Env::ALL[3], SearchBudget::Quick);

    let dir = tmpdir("advisor");
    let path = dir.join("advisor.json");
    advisor.save(&path).expect("save");
    drop(corpus); // the deployed side has no corpus
    let deployed = FormatAdvisor::load(&path).expect("load");

    // Identical behaviour on unseen matrices of different structure.
    for (i, kind) in [
        GenKind::Stencil2D { gx: 60, gy: 60 },
        GenKind::RMat {
            scale: 11,
            nnz: 16_000,
            probs: (0.57, 0.19, 0.19),
        },
        GenKind::Banded {
            n: 4_000,
            half_width: 4,
            fill: 1.0,
        },
    ]
    .into_iter()
    .enumerate()
    {
        let m: CsrMatrix<f64> = MatrixSpec {
            name: format!("probe{i}"),
            kind,
            seed: 4_000 + i as u64,
        }
        .generate();
        assert_eq!(advisor.recommend(&m), deployed.recommend(&m));
        let a = advisor.predict_times(&m);
        let d = deployed.predict_times(&m);
        for ((fa, ta), (fd, td)) in a.iter().zip(&d) {
            assert_eq!(fa, fd);
            assert!((ta - td).abs() <= 1e-12 * ta.abs());
        }
        assert!(Format::ALL.contains(&deployed.recommend(&m).format));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn suite_manifest_regenerates_identical_corpus() {
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 406);
    let json = serde_json::to_string(&suite).expect("serialize suite");
    let back: SyntheticSuite = serde_json::from_str(&json).expect("parse suite");
    let corpus_a = LabeledCorpus::collect(&suite, &Simulator::default(), 2);
    let corpus_b = LabeledCorpus::collect(&back, &Simulator::default(), 2);
    for (a, b) in corpus_a.records.iter().zip(&corpus_b.records).step_by(9) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.times, b.times);
    }
}
