//! Regression pins for [`HeuristicAdvisor`] — the advisor's last line of
//! defense. One matrix per rule branch, asserting the recommended format,
//! the `source`, and the *exact* confidence the rule documents, so any
//! future retuning of the rules must touch these tests deliberately. Plus
//! the model-load-failure → heuristic fallback path end to end.

use spmv_core::{
    Env, FaultPlan, FaultSite, FormatAdvisor, HeuristicAdvisor, RecommendationSource, SearchBudget,
};
use spmv_corpus::{CorpusScale, SyntheticSuite};
use spmv_gpusim::Simulator;
use spmv_matrix::{CsrMatrix, Format, TripletBuilder};

fn matrix(rows: usize, cols: usize, entries: &[(usize, usize)]) -> CsrMatrix<f64> {
    let mut b = TripletBuilder::new(rows, cols);
    for &(r, c) in entries {
        b.push(r, c, 1.0).expect("in range");
    }
    b.build().to_csr()
}

/// Branch 1 — near-uniform rows (cv < 0.25, skew <= 2): ELL at 0.7.
#[test]
fn uniform_rows_branch_is_ell_at_0_7() {
    // Tridiagonal band: row lengths 2,3,3,...,3,2 — cv ≈ 0.1, skew ≈ 1.02.
    let mut entries = Vec::new();
    for r in 0..60usize {
        for c in r.saturating_sub(1)..(r + 2).min(60) {
            entries.push((r, c));
        }
    }
    let rec = HeuristicAdvisor.recommend(&matrix(60, 60, &entries));
    assert_eq!(rec.format, Format::Ell);
    assert_eq!(rec.source, RecommendationSource::Heuristic);
    assert_eq!(rec.confidence, 0.7);
}

/// Branch 2a — pathological skew (skew > 8): merge-based CSR at 0.6.
#[test]
fn heavy_skew_branch_is_merge_csr_at_0_6() {
    // One row holds 100 entries, the other 99 rows hold one each:
    // mu ≈ 2, max = 100, skew ≈ 50 — far past the 8x gate.
    let mut entries: Vec<(usize, usize)> = (0..100).map(|c| (0usize, c)).collect();
    for r in 1..100usize {
        entries.push((r, 0));
    }
    let rec = HeuristicAdvisor.recommend(&matrix(100, 100, &entries));
    assert_eq!(rec.format, Format::MergeCsr);
    assert_eq!(rec.source, RecommendationSource::Heuristic);
    assert_eq!(rec.confidence, 0.6);
}

/// Branch 2b — the cv > 2 arm of the same rule, with skew *under* the 8x
/// gate, so only the variance clause can fire.
#[test]
fn high_variance_branch_is_merge_csr_at_0_6() {
    // 10 of 60 rows have 6 entries, the rest are empty: mu = 1,
    // skew = 6 (≤ 8), cv = sqrt(5) ≈ 2.24 (> 2).
    let mut entries = Vec::new();
    for r in 0..10usize {
        for k in 0..6usize {
            entries.push((r, (r * 6 + k) % 60));
        }
    }
    let rec = HeuristicAdvisor.recommend(&matrix(60, 60, &entries));
    assert_eq!(rec.format, Format::MergeCsr);
    assert_eq!(rec.source, RecommendationSource::Heuristic);
    assert_eq!(rec.confidence, 0.6);
}

/// Branch 3 — moderate skew (4 < skew <= 8, cv <= 2): HYB at 0.5.
#[test]
fn moderate_skew_branch_is_hyb_at_0_5() {
    // 40 rows of 2 entries, one of them widened to 12:
    // mu = 2.25, skew = 12/2.25 ≈ 5.3, cv ≈ 0.69.
    let mut entries = Vec::new();
    for r in 0..40usize {
        entries.push((r, r));
        entries.push((r, (r + 1) % 40));
    }
    for c in 2..12usize {
        entries.push((0, c));
    }
    let rec = HeuristicAdvisor.recommend(&matrix(40, 40, &entries));
    assert_eq!(rec.format, Format::Hyb);
    assert_eq!(rec.source, RecommendationSource::Heuristic);
    assert_eq!(rec.confidence, 0.5);
}

/// Branch 4 — the default: irregular but unremarkable rows, CSR at 0.5.
#[test]
fn default_branch_is_csr_at_0_5() {
    // Alternating row lengths 1 and 3: mu = 2, cv = 0.5, skew = 1.5 —
    // too irregular for ELL, too tame for the skew rules.
    let mut entries = Vec::new();
    for r in 0..30usize {
        entries.push((r, r));
        if r % 2 == 1 {
            entries.push((r, (r + 7) % 30));
            entries.push((r, (r + 13) % 30));
        }
    }
    let rec = HeuristicAdvisor.recommend(&matrix(30, 30, &entries));
    assert_eq!(rec.format, Format::Csr);
    assert_eq!(rec.source, RecommendationSource::Heuristic);
    assert_eq!(rec.confidence, 0.5);
}

/// Branch 5 — degenerate input (no rows or no entries): CSR at 0.2.
#[test]
fn degenerate_branch_is_csr_at_0_2() {
    let empty: CsrMatrix<f64> = TripletBuilder::new(5, 5).build().to_csr();
    let rec = HeuristicAdvisor.recommend(&empty);
    assert_eq!(rec.format, Format::Csr);
    assert_eq!(rec.source, RecommendationSource::Heuristic);
    assert_eq!(rec.confidence, 0.2);
}

/// The fallback path end to end: a trained advisor whose artifact is
/// corrupted on disk cannot be loaded back (typed error, exit-4 territory
/// in the CLI), and a model path broken at runtime degrades to the
/// heuristic answer — same format, source, and confidence as calling
/// [`HeuristicAdvisor`] directly.
#[test]
fn model_load_failure_falls_back_to_heuristic_end_to_end() {
    let dir = std::env::temp_dir().join("spmv_heuristic_regression");
    std::fs::create_dir_all(&dir).expect("mk tmpdir");

    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 901);
    let corpus = spmv_core::LabeledCorpus::collect(&suite, &Simulator::default(), 2);
    let advisor = FormatAdvisor::train(&corpus, Env::ALL[0], SearchBudget::Quick);

    // A clean artifact round-trips...
    let path = dir.join("advisor.json");
    advisor.save(&path).expect("save artifact");
    assert!(FormatAdvisor::load(&path).is_ok());

    // ...a truncated one is rejected with a typed error...
    let text = std::fs::read_to_string(&path).expect("read artifact");
    std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");
    assert!(FormatAdvisor::load(&path).is_err());

    // ...an injected model-load fault is rejected the same way...
    std::fs::write(&path, &text).expect("restore");
    assert!(FormatAdvisor::load_with(&path, &FaultPlan::always(FaultSite::ModelLoad)).is_err());

    // ...and the degraded runtime path answers with exactly the heuristic.
    let mut entries: Vec<(usize, usize)> = (0..80).map(|c| (0usize, c)).collect();
    for r in 1..80usize {
        entries.push((r, 0));
    }
    let m = matrix(80, 80, &entries);
    let broken = FaultPlan::always(FaultSite::FeatureExtraction);
    let rec = advisor.recommend_with(&m, &broken);
    let expected = HeuristicAdvisor.recommend(&m);
    assert_eq!(rec.source, RecommendationSource::Heuristic);
    assert_eq!(rec.format, expected.format);
    assert_eq!(rec.confidence, expected.confidence);
}
