//! End-to-end pipeline integration: corpus → labels → experiments →
//! rendered artifacts, plus the public `FormatAdvisor` façade, at Tiny
//! scale.

use spmv_core::experiments::{
    accuracy_table, classification_tables, fig2, fig6, importance_figure, slowdown_table, table1,
    table14, ExperimentConfig,
};
use spmv_core::{Env, FormatAdvisor, LabeledCorpus, ModelKind, SearchBudget};
use spmv_corpus::{CorpusScale, GenKind, MatrixSpec, SyntheticSuite};
use spmv_features::FeatureSet;
use spmv_gpusim::Simulator;
use spmv_matrix::{CsrMatrix, Format, Precision};

fn tiny_corpus() -> LabeledCorpus {
    let suite = SyntheticSuite::sample(CorpusScale::Tiny, 20180801);
    LabeledCorpus::collect(&suite, &Simulator::default(), 4)
}

#[test]
fn experiment_artifacts_render_end_to_end() {
    let corpus = tiny_corpus();
    let cfg = ExperimentConfig::tiny();

    let t1 = table1(&corpus);
    assert!(t1.body.contains("nnz range"));

    let t4 = accuracy_table(
        "table4",
        "Table IV (tiny)",
        &corpus,
        &Format::BASIC,
        FeatureSet::Set1,
        &cfg,
    );
    assert!(t4.body.contains("XGBST"));
    assert!(t4.body.contains('%'));

    let f2 = fig2();
    assert!(f2.body.contains("CSR5"));

    let f4 = importance_figure("fig4", &corpus, Precision::Single, &cfg);
    assert!(f4.body.contains("nnz_tot"));

    let sd = slowdown_table("table13", ModelKind::DecisionTree, &corpus, &cfg);
    assert!(sd.body.contains("no slowdown"));
}

#[test]
fn regression_and_indirect_artifacts_render() {
    let corpus = tiny_corpus();
    let cfg = ExperimentConfig::tiny();
    let f6 = fig6(&corpus, &cfg);
    assert!(f6.body.contains("MLP regressor"));
    assert!(f6.body.contains("K80c"));
    let t14 = table14(&corpus, &cfg);
    assert!(t14.body.contains("5% tol."));
}

#[test]
fn full_classification_table_set_has_seven_tables() {
    let corpus = tiny_corpus();
    let cfg = ExperimentConfig::tiny();
    let tables = classification_tables(&corpus, &cfg);
    let ids: Vec<&str> = tables.iter().map(|t| t.id).collect();
    assert_eq!(
        ids,
        vec!["table4", "table5", "table6", "table7", "table8", "table9", "table10"]
    );
    for t in &tables {
        // Four environment rows in each.
        assert_eq!(t.body.matches("K80c").count(), 2, "{}", t.id);
        assert_eq!(t.body.matches("P100").count(), 2, "{}", t.id);
    }
}

#[test]
fn advisor_end_to_end_recommends_sensibly() {
    let corpus = tiny_corpus();
    let env = Env::ALL[1];
    let advisor = FormatAdvisor::train(&corpus, env, SearchBudget::Quick);

    // A strongly regular matrix: the recommendation should be one of the
    // formats that actually handles regular structure well (not COO).
    let regular: CsrMatrix<f64> = MatrixSpec {
        name: "probe".into(),
        kind: GenKind::Stencil2D { gx: 120, gy: 120 },
        seed: 77,
    }
    .generate();
    let rec = advisor.recommend(&regular);
    assert_ne!(rec.format, Format::Coo, "COO almost never wins (paper V-A)");
    assert_eq!(rec.source, spmv_core::RecommendationSource::Model);

    // Predicted times must rank the recommendation near the top quarter.
    let times = advisor.predict_times(&regular);
    assert_eq!(times.len(), 6);
    let pos = times
        .iter()
        .position(|(f, _)| *f == advisor.recommend_by_time(&regular).format);
    assert_eq!(pos, Some(0));
}
