//! Golden byte-equality for the structural labeling path (the PR-3
//! tentpole invariant): the value-free profiling engine must serialize
//! bit-identically to the retired value-carrying path — at every thread
//! count — and reproduce the checked-in label cache byte for byte.
//!
//! Three layers of the same guarantee:
//! 1. `collect` at 1 thread == `collect` at 4 threads (schedule invariance);
//! 2. either == a corpus rebuilt serially through
//!    [`spmv_core::measure_matrix_outcomes_reference`], the pre-structural
//!    oracle kept verbatim from before this change;
//! 3. a fresh Tiny/20180801 collection == the bytes of
//!    `results/labels_tiny.json` as committed before the structural engine
//!    existed (so the cache never invalidates and `MODEL_VERSION` stays 3).

use std::path::Path;

use spmv_core::{measure_matrix_outcomes_reference, FaultPlan, LabeledCorpus, MatrixRecord};
use spmv_corpus::{CorpusScale, SyntheticSuite};
use spmv_features::extract;
use spmv_gpusim::Simulator;
use spmv_matrix::CsrMatrix;

/// The exact suite behind `results/labels_tiny.json`
/// (`ExperimentConfig::tiny()`: Tiny scale, the preprint-date seed).
fn tiny_suite() -> SyntheticSuite {
    SyntheticSuite::sample(CorpusScale::Tiny, 20180801)
}

/// Rebuild the corpus the way the seed repo did: serial loop, full
/// value-carrying conversions, per-matrix feature extraction from scratch.
fn reference_corpus(suite: &SyntheticSuite, sim: &Simulator) -> LabeledCorpus {
    let plan = FaultPlan::none();
    let records = suite
        .specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let csr: CsrMatrix<f64> = spec.generate();
            let (times, failures) =
                measure_matrix_outcomes_reference(&csr, sim, spec.seed, &spec.name, &plan);
            MatrixRecord {
                name: spec.name.clone(),
                bucket: suite.bucket_of[i],
                family: spec.kind.family().to_string(),
                shape: (csr.n_rows(), csr.n_cols(), csr.nnz()),
                features: extract(&csr),
                times,
                failures,
                extra: Vec::new(),
            }
        })
        .collect();
    LabeledCorpus {
        suite_seed: suite.seed,
        model_version: spmv_gpusim::MODEL_VERSION,
        env_spec: spmv_core::EnvSpec::default(),
        records,
    }
}

#[test]
fn structural_collection_is_byte_identical_across_threads_and_to_the_oracle() {
    let suite = tiny_suite();
    let sim = Simulator::default();

    let serial = serde_json::to_string(&LabeledCorpus::collect(&suite, &sim, 1)).expect("json");
    let threaded = serde_json::to_string(&LabeledCorpus::collect(&suite, &sim, 4)).expect("json");
    assert_eq!(serial, threaded, "thread count must not change a byte");

    let oracle = serde_json::to_string(&reference_corpus(&suite, &sim)).expect("json");
    assert_eq!(
        serial, oracle,
        "structural path must reproduce the value-carrying path byte for byte"
    );
}

#[test]
fn structural_collection_reproduces_the_checked_in_label_cache() {
    let cache = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/labels_tiny.json");
    let committed =
        std::fs::read_to_string(&cache).unwrap_or_else(|e| panic!("read {}: {e}", cache.display()));

    let suite = tiny_suite();
    let fresh = serde_json::to_string(&LabeledCorpus::collect(&suite, &Simulator::default(), 4))
        .expect("json");
    assert_eq!(
        fresh,
        committed.trim_end(),
        "the committed cache predates the structural engine; a mismatch \
         means the new path changed an artifact bit"
    );
}

#[test]
fn scenario_cells_reproduce_their_committed_caches_at_any_thread_count() {
    // The PR-9 golden sweep: every (op, arch) cell of the scenario grid
    // has a committed env-tagged cache (written by `repro --tiny
    // --scenario`), and a fresh collection reproduces it byte for byte
    // at 1 and 4 threads. Together with the differential tests this pins
    // the whole label space — drift in any op transform, machine preset,
    // or the collection schedule changes committed bytes and fails here.
    let suite = tiny_suite();
    for sc in spmv_core::Scenario::ALL {
        let cache = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join(format!("../../results/labels_tiny.{}.json", sc.tag()));
        let committed = std::fs::read_to_string(&cache)
            .unwrap_or_else(|e| panic!("read {}: {e}", cache.display()));
        let serial =
            serde_json::to_string(&LabeledCorpus::collect_scenario(&suite, sc, 1)).expect("json");
        let threaded =
            serde_json::to_string(&LabeledCorpus::collect_scenario(&suite, sc, 4)).expect("json");
        assert_eq!(
            serial,
            threaded,
            "{}: scenario labels must not depend on the thread count",
            sc.tag()
        );
        assert_eq!(
            serial,
            committed.trim_end(),
            "{}: committed cache drifted from a fresh collection",
            sc.tag()
        );
    }
}

#[test]
fn profiling_path_never_materializes_a_value_plane() {
    // API-level statement of the no-value-allocation claim: the grid a
    // matrix labels through is reachable without `SparseMatrix::from_csr`
    // ever running. Build one value-carrying conversion for scale and show
    // the structural path sees the same measurement grid while its only
    // inputs are the CSR index arrays (`row_ptr`/`col_idx`) — the value
    // slice is dropped before measurement and nothing changes.
    let spec = &tiny_suite().specs[0];
    let csr: CsrMatrix<f64> = spec.generate();
    let sim = Simulator::default();
    let plan = FaultPlan::none();

    let full = spmv_core::measure_matrix_outcomes(&csr, &sim, spec.seed, &spec.name, &plan);

    // Same structure, all values zeroed: measurement must be identical,
    // because the profiling engine never reads (or copies) a value.
    let zeroed = CsrMatrix::from_parts(
        csr.n_rows(),
        csr.n_cols(),
        csr.row_ptr().to_vec(),
        csr.col_idx().to_vec(),
        vec![0.0f64; csr.nnz()],
    )
    .expect("valid csr");
    let from_zeroed =
        spmv_core::measure_matrix_outcomes(&zeroed, &sim, spec.seed, &spec.name, &plan);
    assert_eq!(full, from_zeroed, "labels are a pure function of structure");
}
